package alloc

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestRebalancerUnseenConsumersUseBaseWeights(t *testing.T) {
	var r Rebalancer
	w := r.Weights([]string{"a", "b"}, []float64{2, 0})
	if !almost(w[0], 2) || !almost(w[1], 1) {
		t.Errorf("weights = %v, want [2 1] (bases, non-positive defaulted)", w)
	}
}

func TestRebalancerAllIdleFallsBackToBases(t *testing.T) {
	var r Rebalancer
	// Both consumers observed with zero demand: scores are all zero, so
	// the static base split must survive instead of collapsing to NaN or
	// an arbitrary equal split.
	r.Observe([]Consumer{{ID: "a", Base: 3}, {ID: "b", Base: 1}})
	w := r.Weights([]string{"a", "b"}, []float64{3, 1})
	if !almost(w[0], 3) || !almost(w[1], 1) {
		t.Errorf("weights = %v, want bases [3 1] when every score is zero", w)
	}
}

func TestRebalancerDemandAndFeedbackEarnShare(t *testing.T) {
	var r Rebalancer
	// Same demand, but only "a" is responsive: it must out-weigh "b".
	r.Observe([]Consumer{
		{ID: "a", Demand: 10, Feedbacks: 9},
		{ID: "b", Demand: 10, Feedbacks: 0},
	})
	w := r.Weights([]string{"a", "b"}, []float64{0, 0})
	if w[0] <= w[1] {
		t.Errorf("responsive consumer weight %v not above silent one %v", w[0], w[1])
	}
	shares := Proportional(100, w)
	if shares[0] <= shares[1] {
		t.Errorf("shares = %v, want the responsive consumer favored", shares)
	}
}

// TestRebalancerUnseenConsumerGetsFairShareOnScoreScale: a consumer added
// between windows has no score yet; its base weight must be expressed on
// the score scale (base × mean score per base unit), not dropped in raw —
// a raw ~1 against demand-sized scores of hundreds would pin every
// newcomer to the floor until its first window lands.
func TestRebalancerUnseenConsumerGetsFairShareOnScoreScale(t *testing.T) {
	r := Rebalancer{FloorFrac: -1}
	r.Observe([]Consumer{
		{ID: "a", Base: 1, Demand: 100, Feedbacks: 4}, // score 500
		{ID: "b", Base: 1, Demand: 100, Feedbacks: 4}, // score 500
	})
	w := r.Weights([]string{"a", "b", "new"}, []float64{1, 1, 2})
	// Scale = 1000 score / 2 base units = 500 per unit; the weight-2
	// newcomer lands at 1000 — its operator-weighted fair share.
	if !almost(w[2], 1000) {
		t.Errorf("unseen weight-2 consumer got %v, want 1000 (2 × mean score per base unit)", w[2])
	}
	shares := Proportional(100, w)
	if !almost(shares[2], 50) {
		t.Errorf("unseen consumer share = %v, want its double-weighted 50", shares[2])
	}
}

func TestRebalancerSmoothsAcrossWindows(t *testing.T) {
	r := Rebalancer{Smoothing: 0.5, FloorFrac: -1}
	r.Observe([]Consumer{{ID: "a", Demand: 100}}) // first window taken as-is
	if w := r.Weights([]string{"a"}, []float64{0}); !almost(w[0], 100) {
		t.Fatalf("first-window score = %v, want 100 (seeded, not halved)", w[0])
	}
	r.Observe([]Consumer{{ID: "a", Demand: 0}}) // one idle window decays, not zeroes
	if w := r.Weights([]string{"a"}, []float64{0}); !almost(w[0], 50) {
		t.Errorf("score after idle window = %v, want 50 (EWMA)", w[0])
	}
}

func TestRebalancerFloorPreventsStarvation(t *testing.T) {
	r := Rebalancer{FloorFrac: 0.1}
	r.Observe([]Consumer{
		{ID: "busy", Demand: 1000, Feedbacks: 50},
		{ID: "idle", Demand: 0},
	})
	w := r.Weights([]string{"busy", "idle"}, []float64{0, 0})
	floor := 0.1 * (w[0] + 0) / 2 // floor computed on pre-floor sum
	if w[1] < floor*0.999 {
		t.Errorf("idle weight %v below floor %v — a starved consumer can never earn back", w[1], floor)
	}
	if w[1] >= w[0] {
		t.Errorf("floor overshot: idle %v ≥ busy %v", w[1], w[0])
	}
}

// TestRebalancerNegativeSignalsClampToZero: demand/feedback derived from
// counter deltas can go negative when the aggregate shrinks (a removed
// session takes its history with it). A negative raw score must clamp to
// zero — un-clamped it poisons the score sum and the floor, and
// Proportional then hands the consumer a hard zero share, bypassing the
// no-starvation floor entirely.
func TestRebalancerNegativeSignalsClampToZero(t *testing.T) {
	r := Rebalancer{FloorFrac: 0.2}
	r.Observe([]Consumer{
		{ID: "up", Demand: 50},
		{ID: "down", Demand: -2800}, // removal window: delta went negative
	})
	w := r.Weights([]string{"up", "down"}, []float64{1, 1})
	shares := Proportional(160, w)
	floor := 0.2 * w[0] / 2 // pre-floor sum is w[0] alone: "down" clamps to 0
	if w[1] < floor*0.999 || shares[1] <= 0 {
		t.Errorf("negative window left weight %v / share %v, want floored ≥ %v / > 0",
			w[1], shares[1], floor)
	}
	r.Observe([]Consumer{{ID: "a", Demand: 10, Feedbacks: -5}})
	if w := r.Weights([]string{"a"}, []float64{0}); !almost(w[0], 10) {
		t.Errorf("negative feedback folded as %v, want clamped to 10·(1+0)", w[0])
	}
}

func TestRebalancerForgetsAbsentConsumers(t *testing.T) {
	var r Rebalancer
	r.Observe([]Consumer{{ID: "a", Demand: 100, Feedbacks: 5}})
	r.Observe([]Consumer{{ID: "b", Demand: 1}}) // "a" absent: forgotten
	w := r.Weights([]string{"a"}, []float64{7})
	if !almost(w[0], 7) {
		t.Errorf("removed consumer kept score %v across windows, want base 7", w[0])
	}
	r.Observe([]Consumer{{ID: "b", Demand: 1}})
	r.Forget("b")
	if w := r.Weights([]string{"b"}, []float64{2}); !almost(w[0], 2) {
		t.Errorf("Forget left score %v, want base 2", w[0])
	}
}
