package alloc

// Consumer is one share consumer's observation window, fed to a Rebalancer:
// the raw signals from which the Section 7 option-3 contribution score is
// computed live. The runtime fills one per sync session (ID = destination
// label, Feedbacks = feedback messages heard during the window, Demand =
// outstanding divergence toward that cache) and a relay fills one per face
// (Demand = backlog plus budget actually used).
type Consumer struct {
	// ID keys the consumer's smoothed score across windows, so scores
	// survive consumers joining and leaving around them.
	ID string
	// Base is the operator-assigned share weight (Destination.Weight); it
	// scales the contribution score persistently. Non-positive means 1.
	Base float64
	// Feedbacks counts feedback messages observed during the window — the
	// responsiveness signal. A consumer with spare capacity keeps feeding
	// back; a saturated one goes silent, and extra share would be wasted
	// on it.
	Feedbacks float64
	// Demand is the outstanding work toward this consumer at the end of
	// the window (divergence not yet sent, backlog not yet absorbed) —
	// the need signal. An idle, fully synchronized consumer has none.
	Demand float64
}

// Rebalancer turns per-window Consumer observations into live share weights:
// the paper's option-3 contribution scores computed from observed behavior
// instead of static configuration. Each window's raw score
//
//	raw = base · demand · (1 + feedbacks)
//
// rewards consumers that both need bandwidth (demand) and demonstrably
// absorb it (feedbacks), so a starved-but-responsive cache earns share from
// an idle or saturated one. Scores are smoothed across windows with an EWMA
// (Smoothing) so one noisy window cannot slosh the whole allocation, and
// the returned weights are floored at a fraction of the mean (FloorFrac) so
// no consumer is starved to zero — a floored consumer keeps receiving,
// keeps generating feedback and demand, and can earn its share back.
//
// A Rebalancer is not safe for concurrent use; callers serialize access
// (the runtime holds the source mutex around every call).
type Rebalancer struct {
	// Smoothing is the EWMA weight of the newest window's raw score in
	// [0, 1]; 0 or unset means the default 0.5. A consumer's first window
	// is taken as-is (no history to smooth against), so a cache that joins
	// needing the whole store earns a large share immediately.
	Smoothing float64
	// FloorFrac floors every returned weight at FloorFrac × mean(weights);
	// 0 or unset means the default 0.1. Negative disables the floor.
	FloorFrac float64

	scores map[string]float64
}

const (
	defaultSmoothing = 0.5
	defaultFloorFrac = 0.1
)

func (r *Rebalancer) smoothing() float64 {
	if r.Smoothing <= 0 || r.Smoothing > 1 {
		return defaultSmoothing
	}
	return r.Smoothing
}

func (r *Rebalancer) floorFrac() float64 {
	if r.FloorFrac < 0 {
		return 0
	}
	if r.FloorFrac == 0 {
		return defaultFloorFrac
	}
	return r.FloorFrac
}

// Observe folds one window of observations into the smoothed contribution
// scores. Consumers absent from cons are forgotten: a removed destination's
// history must not leak into a later consumer reusing its id.
func (r *Rebalancer) Observe(cons []Consumer) {
	next := make(map[string]float64, len(cons))
	g := r.smoothing()
	for _, c := range cons {
		base := c.Base
		if base <= 0 {
			base = 1
		}
		// Negative signals count as zero, mirroring Proportional's weight
		// contract: a caller deriving Demand/Feedbacks from counter deltas
		// can go negative when the underlying aggregate shrinks (e.g. a
		// removed session taking its history with it), and a negative
		// score would poison the sum and the floor below it.
		demand, fb := c.Demand, c.Feedbacks
		if demand < 0 {
			demand = 0
		}
		if fb < 0 {
			fb = 0
		}
		raw := base * demand * (1 + fb)
		if old, ok := r.scores[c.ID]; ok {
			next[c.ID] = (1-g)*old + g*raw
		} else {
			next[c.ID] = raw
		}
	}
	r.scores = next
}

// Forget drops one consumer's score immediately (a destination removed
// between windows).
func (r *Rebalancer) Forget(id string) {
	delete(r.scores, id)
}

// Weights returns the current share weights for the given consumers without
// folding a new window: the smoothed score where one exists, and for a
// consumer not yet observed its base weight expressed on the SCORE scale —
// base × (Σ observed scores / Σ their bases) — so a freshly added
// destination is allocated its operator-weighted fair share until its first
// window lands. (A raw base of ~1 dropped into a sum of demand-sized scores
// of hundreds would pin every newcomer to the floor for a full window.)
// When every score is zero — nothing observed anywhere, or every consumer
// idle — the base weights are returned unchanged, so the allocation
// degrades to the static Section 7 split rather than to an arbitrary one.
// Otherwise the floor is applied (see FloorFrac).
func (r *Rebalancer) Weights(ids []string, bases []float64) []float64 {
	baseOf := func(i int) float64 {
		if bases[i] <= 0 {
			return 1
		}
		return bases[i]
	}
	scoreSum, scoredBase := 0.0, 0.0
	for i, id := range ids {
		if s, ok := r.scores[id]; ok {
			scoreSum += s
			scoredBase += baseOf(i)
		}
	}
	scale := 1.0
	if scoreSum > 0 && scoredBase > 0 {
		scale = scoreSum / scoredBase
	}
	w := make([]float64, len(ids))
	sum := 0.0
	for i, id := range ids {
		if s, ok := r.scores[id]; ok {
			w[i] = s
		} else {
			w[i] = baseOf(i) * scale
		}
		sum += w[i]
	}
	if sum == 0 {
		for i, b := range bases {
			if b <= 0 {
				b = 1
			}
			w[i] = b
		}
		return w
	}
	if frac := r.floorFrac(); frac > 0 && len(w) > 0 {
		floor := frac * sum / float64(len(w))
		for i := range w {
			if w[i] < floor {
				w[i] = floor
			}
		}
	}
	return w
}
