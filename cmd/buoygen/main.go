// Command buoygen generates the synthetic wind-buoy traces that stand in
// for the PMEL data set of the paper's Section 6.2.1 (see DESIGN.md §4) and
// writes them as per-object CSV files ("time,value" rows, seconds from
// start). Anyone holding the real Tropical Atmosphere Ocean measurements can
// convert them to the same format and replay them through the simulator via
// workload.ReadTraceCSV.
//
// Example:
//
//	buoygen -out /tmp/buoys -buoys 40 -days 7
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"bestsync/internal/workload"
)

func main() {
	out := flag.String("out", "buoy-traces", "output directory")
	buoys := flag.Int("buoys", 40, "number of buoys")
	comps := flag.Int("components", 2, "wind-vector components per buoy")
	days := flag.Float64("days", 7, "days of data")
	sample := flag.Float64("sample", 600, "seconds between measurements")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	cfg := workload.DefaultBuoyConfig()
	cfg.Days = *days
	cfg.SampleEvery = *sample
	rng := rand.New(rand.NewSource(*seed))
	fleet := workload.GenBuoyFleet(rng, cfg, *buoys, *comps)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("buoygen: %v", err)
	}
	for i, tr := range fleet {
		buoy, comp := i / *comps, i%*comps
		path := filepath.Join(*out, fmt.Sprintf("buoy%03d_c%d.csv", buoy, comp))
		f, err := os.Create(path)
		if err != nil {
			log.Fatalf("buoygen: %v", err)
		}
		if err := tr.WriteCSV(f); err != nil {
			f.Close()
			log.Fatalf("buoygen: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("buoygen: %v", err)
		}
	}
	fmt.Printf("wrote %d traces (%d buoys × %d components, %.3g days at %.0fs cadence) to %s\n",
		len(fleet), *buoys, *comps, *days, *sample, *out)
}
