// Command sourceagent runs a live source node over TCP: it generates a
// random-walk workload over a set of local objects and cooperates with a
// cachesyncd cache to keep the most important changes synchronized under the
// configured bandwidth.
//
// Refreshes are coalesced into wire.RefreshBatch envelopes before hitting
// the TCP stream: -batch caps the batch size (a full batch flushes
// immediately) and -flush bounds how long a partial batch may wait, i.e.
// the extra latency batching can add. -batch 1 disables coalescing.
//
// Example:
//
//	sourceagent -addr localhost:7400 -id sensor-7 -objects 50 -rate 2 -bandwidth 10 -batch 64
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"time"

	"bestsync/internal/metric"
	"bestsync/internal/runtime"
	"bestsync/internal/transport"
)

func main() {
	addr := flag.String("addr", "localhost:7400", "cache daemon address")
	id := flag.String("id", "source-1", "source identifier")
	objects := flag.Int("objects", 20, "number of local objects")
	rate := flag.Float64("rate", 1, "total updates per second across all objects")
	bw := flag.Float64("bandwidth", 10, "source-side send budget (messages/second)")
	batch := flag.Int("batch", 64, "max refreshes per wire batch (1 = no coalescing)")
	flush := flag.Duration("flush", 5*time.Millisecond, "max time a partial batch may wait")
	seed := flag.Int64("seed", time.Now().UnixNano(), "workload seed")
	statsEvery := flag.Duration("stats", 5*time.Second, "stats print interval")
	flag.Parse()

	conn, err := transport.Dial(*addr, *id)
	if err != nil {
		log.Fatalf("sourceagent: %v", err)
	}
	if *batch > 1 {
		conn = transport.NewBatcher(conn, transport.BatcherConfig{
			MaxBatch:   *batch,
			FlushEvery: *flush,
		})
	}
	src := runtime.NewSource(runtime.SourceConfig{
		ID:        *id,
		Metric:    metric.ValueDeviation,
		Bandwidth: *bw,
	}, conn)
	log.Printf("sourceagent %s: %d objects, %.2g updates/s, %.2g msgs/s to %s",
		*id, *objects, *rate, *bw, *addr)

	rng := rand.New(rand.NewSource(*seed))
	values := make([]float64, *objects)
	interval := time.Duration(float64(time.Second) / *rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	updates := time.NewTicker(interval)
	defer updates.Stop()
	stats := time.NewTicker(*statsEvery)
	defer stats.Stop()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)

	for {
		select {
		case <-stop:
			log.Printf("sourceagent %s: shutting down", *id)
			src.Close()
			return
		case <-updates.C:
			i := rng.Intn(*objects)
			if rng.Intn(2) == 0 {
				values[i]++
			} else {
				values[i]--
			}
			src.Update(fmt.Sprintf("%s/obj-%d", *id, i), values[i])
		case <-stats.C:
			st := src.Stats()
			fmt.Printf("updates=%d refreshes=%d feedback=%d pending=%d threshold=%.4g\n",
				st.Updates, st.Refreshes, st.Feedbacks, st.Pending, st.Threshold)
		}
	}
}
