// Command sourceagent runs a live source node over TCP: it generates a
// random-walk workload over a set of local objects and cooperates with one
// or more cachesyncd caches to keep the most important changes synchronized
// under the configured bandwidth.
//
// Refreshes are coalesced into wire.RefreshBatch envelopes before hitting
// the TCP stream: -batch caps the batch size (a full batch flushes
// immediately) and -flush bounds how long a partial batch may wait, i.e.
// the extra latency batching can add. -batch 1 disables coalescing.
//
// # Fan-out
//
// With -caches the agent synchronizes several caches at once, running one
// independent sync session (threshold, priority queue, feedback loop) per
// cache and dividing -bandwidth across them by the Section 7 share
// allocation. Each destination is host:port with an optional =weight
// suffix; omitted weights mean equal shares. Batching is per destination —
// a batch never spans caches.
//
// Examples:
//
//	sourceagent -addr localhost:7400 -id sensor-7 -objects 50 -rate 2 -bandwidth 10 -batch 64
//	sourceagent -caches cache-a:7400,cache-b:7400=2 -id sensor-7 -bandwidth 30
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"time"

	"bestsync/internal/destspec"
	"bestsync/internal/metric"
	"bestsync/internal/runtime"
	"bestsync/internal/transport"
)

func main() {
	addr := flag.String("addr", "localhost:7400", "cache daemon address (single-cache mode)")
	caches := flag.String("caches", "", "comma-separated cache addresses host:port[=weight] (fan-out mode; overrides -addr)")
	id := flag.String("id", "source-1", "source identifier")
	objects := flag.Int("objects", 20, "number of local objects")
	rate := flag.Float64("rate", 1, "total updates per second across all objects")
	bw := flag.Float64("bandwidth", 10, "source-side send budget (messages/second), shared across all caches")
	batch := flag.Int("batch", 64, "max refreshes per wire batch (1 = no coalescing)")
	flush := flag.Duration("flush", 5*time.Millisecond, "max time a partial batch may wait")
	seed := flag.Int64("seed", time.Now().UnixNano(), "workload seed")
	statsEvery := flag.Duration("stats", 5*time.Second, "stats print interval")
	flag.Parse()

	addrs := []string{*addr}
	weights := []float64{0}
	if *caches != "" {
		var err error
		addrs, weights, err = destspec.Parse(*caches)
		if err != nil {
			log.Fatalf("sourceagent: -caches: %v", err)
		}
	}
	// A restarted cache rejoins the fan-out: each session redials with
	// backoff (DialDestinations wires the Redial closures) and
	// re-registers every object. A cache that is down at start-up is
	// reported and retried rather than failing the agent.
	dests, deferred := runtime.DialDestinations(addrs, weights, *id,
		func(conn transport.SourceConn) transport.SourceConn {
			if *batch > 1 {
				conn = transport.NewBatcher(conn, transport.BatcherConfig{
					MaxBatch:   *batch,
					FlushEvery: *flush,
				})
			}
			return conn
		})
	for _, a := range deferred {
		log.Printf("sourceagent: cache %s unreachable, will keep redialing", a)
	}
	src, err := runtime.NewFanoutSource(runtime.SourceConfig{
		ID:        *id,
		Metric:    metric.ValueDeviation,
		Bandwidth: *bw,
	}, dests)
	if err != nil {
		log.Fatalf("sourceagent: %v", err)
	}
	log.Printf("sourceagent %s: %d objects, %.2g updates/s, %.2g msgs/s to %s",
		*id, *objects, *rate, *bw, strings.Join(addrs, ", "))

	rng := rand.New(rand.NewSource(*seed))
	values := make([]float64, *objects)
	interval := time.Duration(float64(time.Second) / *rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	updates := time.NewTicker(interval)
	defer updates.Stop()
	stats := time.NewTicker(*statsEvery)
	defer stats.Stop()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)

	for {
		select {
		case <-stop:
			log.Printf("sourceagent %s: shutting down", *id)
			src.Close()
			return
		case <-updates.C:
			i := rng.Intn(*objects)
			if rng.Intn(2) == 0 {
				values[i]++
			} else {
				values[i]--
			}
			src.Update(fmt.Sprintf("%s/obj-%d", *id, i), values[i])
		case <-stats.C:
			st := src.Stats()
			fmt.Printf("updates=%d refreshes=%d feedback=%d errors=%d pending=%d threshold=%.4g\n",
				st.Updates, st.Refreshes, st.Feedbacks, st.SendErrors, st.Pending, st.Threshold)
			if len(st.Sessions) > 1 {
				for _, sess := range st.Sessions {
					fmt.Printf("  cache %-24s share=%.3g/s refreshes=%d feedback=%d reconnects=%d threshold=%.4g\n",
						sess.CacheID, sess.Share, sess.Refreshes, sess.Feedbacks, sess.Reconnects, sess.Threshold)
				}
			}
		}
	}
}
