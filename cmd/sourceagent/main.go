// Command sourceagent runs a live source node over TCP: it generates a
// random-walk workload over a set of local objects and cooperates with one
// or more cachesyncd caches to keep the most important changes synchronized
// under the configured bandwidth.
//
// Refreshes are coalesced into wire.RefreshBatch envelopes before hitting
// the TCP stream: -batch caps the batch size (a full batch flushes
// immediately) and -flush bounds how long a partial batch may wait, i.e.
// the extra latency batching can add. -batch 1 disables coalescing.
//
// # Fan-out
//
// With -caches the agent synchronizes several caches at once, running one
// independent sync session (threshold, priority queue, feedback loop) per
// cache and dividing -bandwidth across them by the Section 7 share
// allocation. Each destination is host:port with an optional =weight
// suffix; omitted weights mean equal shares. Batching is per destination —
// a batch never spans caches.
//
// The allocation is live: with -rebalance the shares are re-derived
// periodically from observed per-cache feedback and outstanding divergence
// (option-3 contribution scores), and the -http admin endpoint
// adds/removes caches on the running agent:
//
//	POST /caches/add?addr=host:port[&weight=2]   start a session (redialed, batched)
//	POST /caches/remove?addr=host:port           stop it, re-divide the budget
//	GET  /status                                 source stats as JSON
//
// # Sync policy (-mode)
//
// By default the agent runs the paper's source-cooperative PUSH policy.
// With -mode poll|ideal|cgm1|cgm2 it instead ANSWERS cache-driven polls
// from its local store (pair with a cachesyncd running the same -mode): no
// thresholds, no pushes — the cache decides what to ask and when, and the
// agent's replies are paced by the same per-session share of -bandwidth.
//
// With -mode hybrid the agent runs both halves under ONE token bucket: a
// per-session migration controller pushes the objects whose divergence per
// message beats their estimated poll value and leaves the cold tail to
// cache-driven polls, stamping each reply's Pushed set so the cache stops
// polling pushed objects. The agent advertises the cooperative capability
// in its Hello; pair with cachesyncd -mode hybrid.
//
// Examples:
//
//	sourceagent -addr localhost:7400 -id sensor-7 -objects 50 -rate 2 -bandwidth 10 -batch 64
//	sourceagent -caches cache-a:7400,cache-b:7400=2 -id sensor-7 -bandwidth 30 -rebalance 2s -http :7411
//	sourceagent -addr localhost:7400 -mode cgm1 -objects 50 -rate 2 -bandwidth 40
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"bestsync/internal/adminhttp"
	"bestsync/internal/destspec"
	"bestsync/internal/metric"
	"bestsync/internal/runtime"
	"bestsync/internal/transport"
	"bestsync/internal/wire"
)

func main() {
	addr := flag.String("addr", "localhost:7400", "cache daemon address (single-cache mode)")
	caches := flag.String("caches", "", "comma-separated cache addresses host:port[=weight] (fan-out mode; overrides -addr)")
	id := flag.String("id", "source-1", "source identifier")
	objects := flag.Int("objects", 20, "number of local objects")
	rate := flag.Float64("rate", 1, "total updates per second across all objects")
	bw := flag.Float64("bandwidth", 10, "source-side send budget (messages/second), shared across all caches")
	mode := flag.String("mode", "push", "sync policy: push (source-initiated refreshes), hybrid (push hot head, answer polls for the cold tail) or poll|ideal|cgm1|cgm2 (answer cache-driven polls; pair with cachesyncd -mode)")
	batch := flag.Int("batch", 64, "max refreshes per wire batch (1 = no coalescing)")
	flush := flag.Duration("flush", 5*time.Millisecond, "max time a partial batch may wait")
	rebalance := flag.Duration("rebalance", 0, "periodic share re-allocation interval from observed feedback/divergence (0 = static shares)")
	group := flag.Bool("group", false, "session-group fan-out: default-weight push destinations share one scheduling pass and one encode per batch (encode-once delivery)")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the -http mux")
	httpAddr := flag.String("http", "", "optional HTTP admin address (GET /status, POST /caches/add, POST /caches/remove)")
	seed := flag.Int64("seed", time.Now().UnixNano(), "workload seed")
	statsEvery := flag.Duration("stats", 5*time.Second, "stats print interval (0 = silent)")
	codecPref := flag.String("codec", "auto", "wire codec for cache connections: auto (binary, falling back to gob against old daemons) | binary | gob")
	flag.Parse()

	policy, err := runtime.ParsePolicy(*mode)
	if err != nil {
		log.Fatalf("sourceagent: -mode: %v", err)
	}
	dialCodec, err := transport.ParseCodec(*codecPref)
	if err != nil {
		log.Fatalf("sourceagent: -codec: %v", err)
	}
	transport.SetDialCodec(dialCodec)
	// Advertise the peer-serving capability unconditionally: this build's
	// answer path understands known-version hints (wire.Poll.Known), so
	// caches may attach them and save redundant reply items. Hybrid mode
	// additionally advertises cooperation so hybrid caches trust the Pushed
	// sets in this agent's poll replies and stop polling pushed objects.
	agentCaps := wire.CapPeer
	if policy == runtime.PolicyHybrid {
		agentCaps |= wire.CapCooperative
	}
	transport.SetDialCapabilities(agentCaps)
	addrs := []string{*addr}
	weights := []float64{0}
	if *caches != "" {
		var err error
		addrs, weights, err = destspec.Parse(*caches)
		if err != nil {
			log.Fatalf("sourceagent: -caches: %v", err)
		}
	}
	wrap := func(conn transport.SourceConn) transport.SourceConn {
		// Group delivery already coalesces at the scheduler and sends
		// pre-encoded frames; a per-connection Batcher in front of it would
		// only add latency and hide the raw connection's FrameSender fast
		// path. -group therefore uses connections bare.
		if *batch > 1 && !*group {
			conn = transport.NewBatcher(conn, transport.BatcherConfig{
				MaxBatch:   *batch,
				FlushEvery: *flush,
			})
		}
		return conn
	}
	// A restarted cache rejoins the fan-out: each session redials with
	// backoff (DialDestinations wires the Redial closures) and
	// re-registers every object. A cache that is down at start-up is
	// reported and retried rather than failing the agent.
	dests, deferred := runtime.DialDestinations(addrs, weights, *id, wrap)
	for _, a := range deferred {
		log.Printf("sourceagent: cache %s unreachable, will keep redialing", a)
	}
	src, err := runtime.NewFanoutSource(runtime.SourceConfig{
		ID:        *id,
		Metric:    metric.ValueDeviation,
		Bandwidth: *bw,
		Rebalance: *rebalance,
		Policy:    policy,
		Group:     runtime.GroupConfig{Enabled: *group},
	}, dests)
	if err != nil {
		log.Fatalf("sourceagent: %v", err)
	}
	log.Printf("sourceagent %s: policy %v, %d objects, %.2g updates/s, %.2g msgs/s to %s",
		*id, policy, *objects, *rate, *bw, strings.Join(addrs, ", "))
	if *pprofFlag && *httpAddr == "" {
		log.Printf("sourceagent: -pprof has no effect without -http")
	}
	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(src.Stats())
		})
		mux.HandleFunc("/caches/add", adminhttp.AddHandler(src.AddDestination, *id, wrap))
		mux.HandleFunc("/caches/remove", adminhttp.RemoveHandler(src.RemoveDestination))
		if *pprofFlag {
			adminhttp.RegisterPprof(mux)
		}
		go func() {
			log.Printf("sourceagent: admin at http://%s (/status /caches/add /caches/remove)", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, mux); err != nil {
				log.Printf("sourceagent: http: %v", err)
			}
		}()
	}

	rng := rand.New(rand.NewSource(*seed))
	values := make([]float64, *objects)
	interval := time.Duration(float64(time.Second) / *rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	updates := time.NewTicker(interval)
	defer updates.Stop()
	// 0 = silent, same pattern as cachesyncd (a zero ticker panics; a
	// stopped one never fires).
	var stats *time.Ticker
	if *statsEvery > 0 {
		stats = time.NewTicker(*statsEvery)
	} else {
		stats = time.NewTicker(time.Hour)
		stats.Stop()
	}
	defer stats.Stop()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)

	for {
		select {
		case <-stop:
			log.Printf("sourceagent %s: shutting down", *id)
			src.Close()
			return
		case <-updates.C:
			i := rng.Intn(*objects)
			if rng.Intn(2) == 0 {
				values[i]++
			} else {
				values[i]--
			}
			src.Update(fmt.Sprintf("%s/obj-%d", *id, i), values[i])
		case <-stats.C:
			st := src.Stats()
			if policy.CacheDriven() {
				fmt.Printf("updates=%d polls_answered=%d reply_items=%d errors=%d\n",
					st.Updates, st.PollsAnswered, st.Refreshes, st.SendErrors)
				continue
			}
			fmt.Printf("updates=%d refreshes=%d feedback=%d errors=%d pending=%d rebalances=%d threshold=%.4g\n",
				st.Updates, st.Refreshes, st.Feedbacks, st.SendErrors, st.Pending, st.Rebalances, st.Threshold)
			if h := st.Hybrid; h != nil {
				fmt.Printf("  hybrid push_objects=%d poll_objects=%d promotions=%d demotions=%d polls_answered=%d polled_items=%d\n",
					h.PushObjects, h.PollObjects, h.Promotions, h.Demotions, st.PollsAnswered, h.PolledItems)
			}
			if g := st.Group; g != nil {
				fmt.Printf("  group members=%d batches=%d delivered=%d fallbacks=%d detaches=%d rejoins=%d overruns=%d share=%.3g/s\n",
					g.Members, g.Batches, g.Delivered, g.Fallbacks, g.Detaches, g.Rejoins, g.QueueOverruns, g.MemberShare)
			}
			if len(st.Sessions) > 1 {
				for _, sess := range st.Sessions {
					ended := ""
					if sess.Ended {
						ended = " ENDED"
					}
					fmt.Printf("  cache %-24s share=%.3g/s weight=%.3g refreshes=%d feedback=%d reconnects=%d threshold=%.4g%s\n",
						sess.CacheID, sess.Share, sess.Weight, sess.Refreshes, sess.Feedbacks, sess.Reconnects, sess.Threshold, ended)
				}
			}
		}
	}
}
