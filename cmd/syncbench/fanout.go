package main

import (
	"fmt"
	"time"

	"bestsync/internal/metric"
	"bestsync/internal/runtime"
)

// fanoutCacheResult is one cache's slice of a fan-out measurement.
type fanoutCacheResult struct {
	CacheID        string  `json:"cache_id"`
	Applied        int     `json:"applied"`
	Feedbacks      int     `json:"feedbacks"`
	Threshold      float64 `json:"threshold"`
	ShareMsgsPerS  float64 `json:"share_msgs_per_s"`
	MeanDivergence float64 `json:"mean_divergence"`
}

// fanoutResult is one measured fan-out topology: one live source driving
// n caches over the given transport. The delivery-cost scenarios
// (delivery-session | delivery-group) reuse the shape with the trailing
// optional fields set: their destinations are measuring sinks, not caches,
// so per_cache is empty and the cost axes are CPU and egress per
// destination instead of divergence.
type fanoutResult struct {
	Scenario       string              `json:"scenario"` // fanout-local | fanout-tcp | delivery-session | delivery-group
	Caches         int                 `json:"caches"`
	Objects        int                 `json:"objects"`
	DurationS      float64             `json:"duration_s"`
	BandwidthMsgsS float64             `json:"bandwidth_msgs_per_s"`
	Updates        int                 `json:"updates"`
	Refreshes      int                 `json:"refreshes"`
	RefreshesPerS  float64             `json:"refreshes_per_s"`
	MeanDivergence float64             `json:"mean_divergence"`
	PerCache       []fanoutCacheResult `json:"per_cache,omitempty"`

	// Delivery-cost scenarios only.
	Mode                         string  `json:"mode,omitempty"` // session | group
	Delivered                    int     `json:"delivered,omitempty"`
	OriginCPUNs                  int64   `json:"origin_cpu_ns,omitempty"`
	OriginCPUNsPerRefreshPerDest float64 `json:"origin_cpu_ns_per_refresh_per_dest,omitempty"`
	EgressBytesPerDest           float64 `json:"egress_bytes_per_dest,omitempty"`
	GroupBatches                 int64   `json:"group_batches,omitempty"`
	SpeedupVsSession             float64 `json:"speedup_vs_session,omitempty"`
}

// runFanoutMode sweeps the 1-source → N-cache topology over both
// transports for N = 1..maxCaches, then runs the delivery-cost scenarios
// for each N in scale (session-group fan-out vs. the per-session baseline
// over measuring sinks), printing a table and writing the machine-readable
// results to BENCH_fanout.json.
func runFanoutMode(maxCaches, objects int, rate, bandwidth float64, duration time.Duration, scale []int, destBW float64) {
	fmt.Printf("# live fan-out: 1 source -> N caches, %d objects, %.0f updates/s, %.0f msgs/s budget, %s per topology\n\n",
		objects, rate, bandwidth, duration)
	fmt.Printf("%-14s %7s %10s %12s %12s %16s\n",
		"scenario", "caches", "updates", "refreshes", "refr/s", "mean divergence")
	var results []fanoutResult
	for _, tcp := range []bool{false, true} {
		for n := 1; n <= maxCaches; n++ {
			r := measureFanout(tcp, n, objects, rate, bandwidth, duration)
			results = append(results, r)
			fmt.Printf("%-14s %7d %10d %12d %12.1f %16.4f\n",
				r.Scenario, r.Caches, r.Updates, r.Refreshes, r.RefreshesPerS, r.MeanDivergence)
		}
	}
	fmt.Println()
	for _, r := range results {
		if r.Caches < maxCaches {
			continue
		}
		fmt.Printf("# %s per-cache breakdown (N=%d):\n", r.Scenario, r.Caches)
		for _, c := range r.PerCache {
			fmt.Printf("  %-12s share=%6.1f/s applied=%6d feedback=%4d threshold=%-10.4g divergence=%.4f\n",
				c.CacheID, c.ShareMsgsPerS, c.Applied, c.Feedbacks, c.Threshold, c.MeanDivergence)
		}
	}
	results = runDeliveryScales(results, scale, objects, rate, destBW, duration)
	if err := writeBenchJSON("BENCH_fanout.json", results); err != nil {
		fmt.Printf("syncbench: writing BENCH_fanout.json: %v\n", err)
		return
	}
	fmt.Println("\nwrote BENCH_fanout.json")
}

// measureFanout runs one topology: n caches (in-process or loopback TCP),
// one fan-out source, a paced random-walk workload, and a final divergence
// audit comparing every cache copy against the canonical values. Node
// setup, workload and audit are shared with the hierarchy benchmark
// (benchNode, pacedRandomWalk, meanAbsDivergence in hierarchy.go).
func measureFanout(tcp bool, n, objects int, rate, bandwidth float64, duration time.Duration) fanoutResult {
	scenario := "fanout-local"
	if tcp {
		scenario = "fanout-tcp"
	}
	// Per-cache processing budget mirrors the source budget.
	nodes := make([]benchNode, n)
	dests := make([]runtime.Destination, n)
	for i := 0; i < n; i++ {
		nodes[i] = newBenchNode(tcp, fmt.Sprintf("cache-%d", i), bandwidth)
		dests[i] = runtime.Destination{CacheID: nodes[i].cache.ID(), Conn: nodes[i].dial("bench-src")}
	}
	src, err := runtime.NewFanoutSource(runtime.SourceConfig{
		ID:        "bench-src",
		Metric:    metric.ValueDeviation,
		Bandwidth: bandwidth,
		Tick:      10 * time.Millisecond,
	}, dests)
	if err != nil {
		panic(err)
	}

	values, elapsed := pacedRandomWalk(src, "bench-src", objects, rate, duration)

	st := src.Stats()
	res := fanoutResult{
		Scenario:       scenario,
		Caches:         n,
		Objects:        objects,
		DurationS:      elapsed,
		BandwidthMsgsS: bandwidth,
		Updates:        st.Updates,
		Refreshes:      st.Refreshes,
		RefreshesPerS:  float64(st.Refreshes) / elapsed,
	}
	total := 0.0
	for i, node := range nodes {
		div := meanAbsDivergence(node.cache, "bench-src", values)
		total += div
		res.PerCache = append(res.PerCache, fanoutCacheResult{
			CacheID:        node.cache.ID(),
			Applied:        node.cache.Stats().Refreshes,
			Feedbacks:      st.Sessions[i].Feedbacks,
			Threshold:      st.Sessions[i].Threshold,
			ShareMsgsPerS:  st.Sessions[i].Share,
			MeanDivergence: div,
		})
	}
	res.MeanDivergence = total / float64(n)

	src.Close()
	for _, node := range nodes {
		node.cleanup()
	}
	return res
}
