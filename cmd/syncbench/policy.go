package main

import (
	"fmt"
	"time"

	"bestsync/internal/metric"
	"bestsync/internal/runtime"
)

// policyResult is one measured (policy, transport) cell of the live
// push-vs-poll comparison — the wall-clock analogue of Figure 6 (§6.3).
type policyResult struct {
	Scenario       string  `json:"scenario"` // <policy>-<transport>
	Policy         string  `json:"policy"`   // push | ideal | cgm1 | cgm2
	Transport      string  `json:"transport"`
	Objects        int     `json:"objects"`
	DurationS      float64 `json:"duration_s"`
	BandwidthMsgsS float64 `json:"bandwidth_msgs_per_s"`
	MsgCost        float64 `json:"msg_cost_per_refresh"`
	Updates        int     `json:"updates"`
	// Refreshes counts values actually installed at the cache.
	Refreshes int `json:"refreshes"`
	// Messages counts everything on the wire: refreshes + feedback for
	// push; poll requests + reply items for the cache-driven modes.
	Messages int     `json:"messages"`
	MsgsPerS float64 `json:"msgs_per_s"`
	// Poll-mode extras (zero for push).
	Polls          int     `json:"polls,omitempty"`
	Resolves       int     `json:"resolves,omitempty"`
	MeanDivergence float64 `json:"mean_divergence"`
}

// policySweep is the policy order of the sweep (and of Figure 6's curves).
var policySweep = []runtime.Policy{
	runtime.PolicyPush, runtime.PolicyIdeal, runtime.PolicyCGM1, runtime.PolicyCGM2,
}

// runPolicyMode runs the live §6.3 comparison: one source, one cache, the
// same paced random-walk workload and the same message budget for every
// policy, over both transports. The paper's claim under test is the
// ordering — source-cooperative push should end no more diverged than the
// CGM polling baselines at equal budget (polls pay a 2-message round trip
// and estimate rates; push pays 1 message and KNOWS what changed). Results
// go to stdout and BENCH_policy.json.
func runPolicyMode(objects int, rate, bandwidth float64, duration, resolveEvery time.Duration) {
	fmt.Printf("# sync policies: 1 source -> 1 cache, %d objects, %.0f updates/s, %.0f msgs/s budget, %s per scenario, re-solve %s\n\n",
		objects, rate, bandwidth, duration, resolveEvery)
	fmt.Printf("%-12s %6s %10s %12s %10s %10s %16s\n",
		"scenario", "cost", "updates", "refreshes", "messages", "msgs/s", "mean divergence")
	var results []policyResult
	divergence := map[string]float64{}
	for _, tcp := range []bool{false, true} {
		for _, policy := range policySweep {
			r := measurePolicy(tcp, policy, objects, rate, bandwidth, duration, resolveEvery)
			results = append(results, r)
			divergence[r.Scenario] = r.MeanDivergence
			fmt.Printf("%-12s %6.0f %10d %12d %10d %10.1f %16.4f\n",
				r.Scenario, r.MsgCost, r.Updates, r.Refreshes, r.Messages, r.MsgsPerS, r.MeanDivergence)
		}
	}
	fmt.Println()
	for _, transport := range []string{"local", "tcp"} {
		push := divergence["push-"+transport]
		for _, cgm := range []string{"cgm1", "cgm2"} {
			poll := divergence[cgm+"-"+transport]
			verdict := "push wins (paper §6.3 ordering)"
			if push > poll {
				verdict = "ORDERING VIOLATED"
			}
			fmt.Printf("# %s: push %.4f vs %s %.4f — %s\n", transport, push, cgm, poll, verdict)
		}
	}
	if err := writeBenchJSON("BENCH_policy.json", results); err != nil {
		fmt.Printf("syncbench: writing BENCH_policy.json: %v\n", err)
		return
	}
	fmt.Println("\nwrote BENCH_policy.json")
}

// measurePolicy runs one (policy, transport) cell and audits the cache
// against the canonical values.
func measurePolicy(tcp bool, policy runtime.Policy, objects int, rate, bandwidth float64, duration, resolveEvery time.Duration) policyResult {
	transportName := "local"
	if tcp {
		transportName = "tcp"
	}
	res := policyResult{
		Scenario:       policy.String() + "-" + transportName,
		Policy:         policy.String(),
		Transport:      transportName,
		Objects:        objects,
		BandwidthMsgsS: bandwidth,
		MsgCost:        policy.MessageCost(),
	}

	// The cache's message budget is the comparison axis; the paced walk
	// spreads `rate` uniformly, so ideal mode's known λ is rate/objects.
	perObjRate := rate / float64(objects)
	node := newBenchNodeCfg(tcp, runtime.CacheConfig{
		ID:        "policy-cache",
		Bandwidth: bandwidth,
		Tick:      10 * time.Millisecond,
		Policy:    policy,
		Poll: runtime.PollConfig{
			ReSolveEvery: resolveEvery,
			Seed:         1,
			TrueRate:     func(string) float64 { return perObjRate },
		},
	})
	// The source-side budget: B for push (it is the sender), effectively
	// unconstrained for the cache-driven modes — the CGM model assumes no
	// source-side limit, only cache-side capacity (internal/cgm.Config),
	// and the cache's charged polls already bound the message total.
	srcBW := bandwidth
	if policy.CacheDriven() {
		srcBW = bandwidth * 10
	}
	src := runtime.NewSource(runtime.SourceConfig{
		ID:        "bench-policy",
		Metric:    metric.ValueDeviation,
		Bandwidth: srcBW,
		Tick:      10 * time.Millisecond,
		Policy:    policy,
	}, node.dial("bench-policy"))

	values, elapsed := pacedRandomWalk(src, "bench-policy", objects, rate, duration)
	res.DurationS = elapsed

	cs := node.cache.Stats()
	st := src.Stats()
	res.Updates = st.Updates
	res.Refreshes = cs.Refreshes
	if policy.CacheDriven() {
		res.Polls = cs.Polls
		res.Resolves = cs.Resolves
		// Replies always count; requests count only for the practical
		// modes — §6.3's ideal assumes free requests, and the budget
		// charged them that way.
		res.Messages = cs.PollReplies + int(policy.MessageCost()-1)*cs.Polls
	} else {
		res.Messages = st.Refreshes + cs.Feedbacks
	}
	res.MsgsPerS = float64(res.Messages) / elapsed
	res.MeanDivergence = meanAbsDivergence(node.cache, "bench-policy", values)

	src.Close()
	node.cleanup()
	return res
}
