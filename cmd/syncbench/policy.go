package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"bestsync/internal/metric"
	"bestsync/internal/runtime"
	"bestsync/internal/transport"
	"bestsync/internal/wire"
)

// policyResult is one measured (policy, transport, workload) cell of the
// live push-vs-poll comparison — the wall-clock analogue of Figure 6 (§6.3).
type policyResult struct {
	Scenario       string  `json:"scenario"` // <policy>-<transport>[-z<s>]
	Policy         string  `json:"policy"`   // push | ideal | cgm1 | cgm2 | hybrid
	Transport      string  `json:"transport"`
	Objects        int     `json:"objects"`
	DurationS      float64 `json:"duration_s"`
	BandwidthMsgsS float64 `json:"bandwidth_msgs_per_s"`
	MsgCost        float64 `json:"msg_cost_per_refresh"`
	// ZipfS is the Zipf exponent of a skewed-workload sweep point; zero
	// means the uniform round-robin workload.
	ZipfS   float64 `json:"zipf_s,omitempty"`
	Updates int     `json:"updates"`
	// Refreshes counts values actually installed at the cache.
	Refreshes int `json:"refreshes"`
	// Messages counts everything on the wire: refreshes + feedback for
	// push; poll requests + reply items for the cache-driven modes; all
	// four flows for hybrid.
	Messages int     `json:"messages"`
	MsgsPerS float64 `json:"msgs_per_s"`
	// Poll-mode extras (zero for push).
	Polls    int `json:"polls,omitempty"`
	Resolves int `json:"resolves,omitempty"`
	// Hybrid-mode extras: final push/poll set split, migration counts and
	// the values the poll half delivered (the rest of Refreshes is pushes).
	PushObjects int `json:"push_objects,omitempty"`
	PollObjects int `json:"poll_objects,omitempty"`
	Promotions  int `json:"promotions,omitempty"`
	Demotions   int `json:"demotions,omitempty"`
	PolledItems int `json:"polled_items,omitempty"`
	// MeanDivergence is the time-averaged mean |cache − canonical| over the
	// steady-state portion of the run (~100ms samples after a warm-up
	// third, plus the settled end state) — the paper's objective.
	MeanDivergence float64 `json:"mean_divergence"`
}

// policySweep is the policy order of the sweep (and of Figure 6's curves),
// plus the hybrid policy that splits each object between the two regimes.
var policySweep = []runtime.Policy{
	runtime.PolicyPush, runtime.PolicyIdeal, runtime.PolicyCGM1, runtime.PolicyCGM2,
	runtime.PolicyHybrid,
}

// runPolicyMode runs the live §6.3 comparison: one source, one cache, the
// same paced workload and the same message budget for every policy, over
// both transports. The paper's claim under test is the ordering —
// source-cooperative push should end no more diverged than the CGM polling
// baselines at equal budget (polls pay a 2-message round trip and estimate
// rates; push pays 1 message and KNOWS what changed). Each zipf exponent
// adds a skewed-workload sweep point on top of the uniform one; there the
// hybrid policy gets to show its split — push the hot head, poll the cold
// tail. Results go to stdout and BENCH_policy.json.
func runPolicyMode(objects int, rate, bandwidth float64, duration, resolveEvery time.Duration, zipf []float64) {
	fmt.Printf("# sync policies: 1 source -> 1 cache, %d objects, %.0f updates/s, %.0f msgs/s budget, %s per scenario, re-solve %s\n\n",
		objects, rate, bandwidth, duration, resolveEvery)
	fmt.Printf("%-18s %6s %10s %12s %10s %10s %16s\n",
		"scenario", "cost", "updates", "refreshes", "messages", "msgs/s", "mean divergence")
	sweep := append([]float64{0}, zipf...)
	var results []policyResult
	divergence := map[string]float64{}
	for _, zipfS := range sweep {
		for _, tcp := range []bool{false, true} {
			for _, policy := range policySweep {
				r := measurePolicy(tcp, policy, objects, rate, bandwidth, duration, resolveEvery, zipfS)
				results = append(results, r)
				divergence[r.Scenario] = r.MeanDivergence
				fmt.Printf("%-18s %6.0f %10d %12d %10d %10.1f %16.4f\n",
					r.Scenario, r.MsgCost, r.Updates, r.Refreshes, r.Messages, r.MsgsPerS, r.MeanDivergence)
			}
		}
	}
	fmt.Println()
	for _, zipfS := range sweep {
		for _, transport := range []string{"local", "tcp"} {
			suffix := scenarioSuffix(transport, zipfS)
			push := divergence["push"+suffix]
			for _, cgm := range []string{"cgm1", "cgm2"} {
				poll := divergence[cgm+suffix]
				verdict := "push wins (paper §6.3 ordering)"
				if push > poll {
					verdict = "ORDERING VIOLATED"
				}
				fmt.Printf("# %s: push %.4f vs %s %.4f — %s\n", suffix[1:], push, cgm, poll, verdict)
			}
			hybrid := divergence["hybrid"+suffix]
			bestPoll := min(divergence["cgm1"+suffix], divergence["cgm2"+suffix])
			switch {
			case hybrid < push && hybrid < bestPoll:
				fmt.Printf("# %s: hybrid %.4f beats push %.4f AND best poll %.4f\n", suffix[1:], hybrid, push, bestPoll)
			default:
				fmt.Printf("# %s: hybrid %.4f vs push %.4f / best poll %.4f\n", suffix[1:], hybrid, push, bestPoll)
			}
		}
	}
	if err := writeBenchJSON("BENCH_policy.json", results); err != nil {
		fmt.Printf("syncbench: writing BENCH_policy.json: %v\n", err)
		return
	}
	fmt.Println("\nwrote BENCH_policy.json")
}

// scenarioSuffix builds the "-<transport>[-z<s>]" tail of a scenario name.
func scenarioSuffix(transportName string, zipfS float64) string {
	s := "-" + transportName
	if zipfS > 0 {
		s += fmt.Sprintf("-z%g", zipfS)
	}
	return s
}

// pacedPickWalk drives src with a paced ±1 random walk like pacedRandomWalk
// but lets the caller choose which object each step hits — round-robin for
// the uniform workload, a Zipf draw for the skewed sweep points — and, when
// sample is non-nil, hands it the live canonical values every ~100ms so the
// caller can integrate divergence over time (the paper's metric) instead of
// judging one end-state snapshot. The callback runs on the walk goroutine,
// so reading values inside it is race-free.
func pacedPickWalk(src *runtime.Source, prefix string, objects int, rate float64, duration time.Duration, pick func(step int) int, sample func(values []float64)) ([]float64, float64) {
	values := make([]float64, objects)
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	start := time.Now()
	lastSample := start
	step := 1
	for time.Since(start) < duration {
		i := pick(step)
		if step%2 == 0 {
			values[i]++
		} else {
			values[i]--
		}
		src.Update(fmt.Sprintf("%s/obj-%d", prefix, i), values[i])
		step++
		if sample != nil && time.Since(lastSample) >= 100*time.Millisecond {
			sample(values)
			lastSample = time.Now()
		}
		time.Sleep(interval)
	}
	time.Sleep(150 * time.Millisecond)
	return values, time.Since(start).Seconds()
}

// measurePolicy runs one (policy, transport, workload) cell and audits the
// cache against the canonical values.
func measurePolicy(tcp bool, policy runtime.Policy, objects int, rate, bandwidth float64, duration, resolveEvery time.Duration, zipfS float64) policyResult {
	transportName := "local"
	if tcp {
		transportName = "tcp"
	}
	res := policyResult{
		Scenario:       policy.String() + scenarioSuffix(transportName, zipfS),
		Policy:         policy.String(),
		Transport:      transportName,
		Objects:        objects,
		BandwidthMsgsS: bandwidth,
		MsgCost:        policy.MessageCost(),
		ZipfS:          zipfS,
	}

	// The cache's message budget is the comparison axis. Ideal mode KNOWS
	// each object's λ: rate/objects on the uniform round-robin walk, the
	// Zipf pmf share on a skewed sweep point.
	trueRate := func(string) float64 { return rate / float64(objects) }
	if zipfS > 0 {
		probs := zipfProbs(objects, zipfS)
		trueRate = func(id string) float64 {
			var k int
			if _, err := fmt.Sscanf(id, "bench-policy/obj-%d", &k); err != nil || k < 0 || k >= objects {
				return rate / float64(objects)
			}
			return rate * probs[k]
		}
	}
	node := newBenchNodeCfg(tcp, runtime.CacheConfig{
		ID:        "policy-cache",
		Bandwidth: bandwidth,
		Tick:      10 * time.Millisecond,
		Policy:    policy,
		Poll: runtime.PollConfig{
			ReSolveEvery: resolveEvery,
			Seed:         1,
			TrueRate:     trueRate,
		},
	})
	// The source-side budget: B for push and hybrid (the source is the
	// sender, and in hybrid the ONE bucket covers pushes and poll answers
	// alike), effectively unconstrained for the cache-driven modes — the
	// CGM model assumes no source-side limit, only cache-side capacity
	// (internal/cgm.Config), and the cache's charged polls already bound
	// the message total.
	srcBW := bandwidth
	if policy.CacheDriven() {
		srcBW = bandwidth * 10
	}
	if policy == runtime.PolicyHybrid {
		// Advertise cooperation on the dials below so the cache honors the
		// Pushed sets in this source's replies; reset on the way out so the
		// other sweep cells keep legacy handshakes.
		transport.SetDialCapabilities(wire.CapCooperative)
		defer transport.SetDialCapabilities(0)
	}
	src := runtime.NewSource(runtime.SourceConfig{
		ID:        "bench-policy",
		Metric:    metric.ValueDeviation,
		Bandwidth: srcBW,
		Tick:      10 * time.Millisecond,
		Policy:    policy,
		// Migration windows sized to the bench: several controller passes
		// inside even a sub-second CI smoke window. The band is set low and
		// wide, with a slow EWMA gain: the push set covers every object pure
		// push would serve, the poll set is left with the genuinely cold
		// tail, and a mid-rank object whose 0-or-1 updates per window make
		// the raw score oscillate stays put instead of flapping between
		// regimes (each flap parks a diverged object outside the push queue
		// waiting on a rare poll).
		Hybrid: runtime.HybridConfig{
			Promote:      0.4,
			Demote:       0.03,
			Gain:         0.15,
			MigrateEvery: resolveEvery,
		},
	}, node.dial("bench-policy"))

	pick := func(step int) int { return step % objects }
	if zipfS > 0 {
		rng := rand.New(rand.NewSource(1))
		z := rand.NewZipf(rng, zipfS, 1, uint64(objects-1))
		pick = func(int) int { return int(z.Uint64()) }
	}
	// Time-averaged divergence, the paper's objective: sample the cache
	// against the live canonical values through the run, discarding the
	// bootstrap third (discovery, estimator warm-up, threshold settling)
	// so every policy is judged on its steady state.
	var divSum float64
	var divN int
	warm := time.Now().Add(duration / 3)
	sample := func(values []float64) {
		if time.Now().Before(warm) {
			return
		}
		divSum += meanAbsDivergence(node.cache, "bench-policy", values)
		divN++
	}
	values, elapsed := pacedPickWalk(src, "bench-policy", objects, rate, duration, pick, sample)
	res.DurationS = elapsed

	cs := node.cache.Stats()
	st := src.Stats()
	res.Updates = st.Updates
	res.Refreshes = cs.Refreshes
	switch {
	case policy == runtime.PolicyHybrid:
		res.Polls = cs.Polls
		res.Resolves = cs.Resolves
		// Everything on the wire, both regimes: pushes + feedback from the
		// push half, requests + reply traffic from the poll half. The
		// source's Refreshes counts pushes AND answered reply items, and
		// the cache's PollReplies counts those same items again (plus the
		// discovery listings) — subtract the poll-half deliveries once so
		// each value transfer is billed a single message.
		res.Messages = st.Refreshes + cs.Feedbacks + cs.Polls + cs.PollReplies
		if h := st.Hybrid; h != nil {
			res.Messages -= h.PolledItems
			res.PushObjects = h.PushObjects
			res.PollObjects = h.PollObjects
			res.Promotions = h.Promotions
			res.Demotions = h.Demotions
			res.PolledItems = h.PolledItems
		}
	case policy.CacheDriven():
		res.Polls = cs.Polls
		res.Resolves = cs.Resolves
		// Replies always count; requests count only for the practical
		// modes — §6.3's ideal assumes free requests, and the budget
		// charged them that way.
		res.Messages = cs.PollReplies + int(policy.MessageCost()-1)*cs.Polls
	default:
		res.Messages = st.Refreshes + cs.Feedbacks
	}
	res.MsgsPerS = float64(res.Messages) / elapsed
	divSum += meanAbsDivergence(node.cache, "bench-policy", values) // settled end state
	res.MeanDivergence = divSum / float64(divN+1)

	src.Close()
	node.cleanup()
	return res
}

// zipfProbs returns the Zipf(s) pmf over n ranks, matching rand.NewZipf's
// P(k) ∝ 1/(1+k)^s parameterization (v = 1).
func zipfProbs(n int, s float64) []float64 {
	probs := make([]float64, n)
	sum := 0.0
	for k := range probs {
		probs[k] = 1 / math.Pow(float64(1+k), s)
		sum += probs[k]
	}
	for k := range probs {
		probs[k] /= sum
	}
	return probs
}
