package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestFanoutBenchSchema is the CI smoke for -fanout: a short sweep plus one
// small delivery-cost scale must run end to end and emit a
// BENCH_fanout.json that parses with exactly the documented schema
// (docs/operations.md) — unknown fields in the file mean the docs lag the
// code, a decode error means the reverse.
func TestFanoutBenchSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("four measurement windows are too slow for -short")
	}
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	runFanoutMode(2, 24, 400, 120, 600*time.Millisecond, []int{40}, 50)

	data, err := os.ReadFile(filepath.Join(dir, "BENCH_fanout.json"))
	if err != nil {
		t.Fatalf("BENCH_fanout.json not written: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var results []fanoutResult
	if err := dec.Decode(&results); err != nil {
		t.Fatalf("BENCH_fanout.json does not match the documented schema: %v", err)
	}
	// 2 topologies × N=1..2 from the sweep, plus session+group delivery at
	// the one requested scale.
	if len(results) != 6 {
		t.Fatalf("got %d results, want 6", len(results))
	}
	byScenario := map[string]int{}
	for _, r := range results {
		byScenario[r.Scenario]++
	}
	for _, want := range []string{"fanout-local", "fanout-tcp"} {
		if byScenario[want] != 2 {
			t.Errorf("scenario %s appears %d times, want 2", want, byScenario[want])
		}
	}
	for _, want := range []string{"delivery-session", "delivery-group"} {
		if byScenario[want] != 1 {
			t.Errorf("scenario %s appears %d times, want 1", want, byScenario[want])
		}
	}
	for _, r := range results {
		switch r.Scenario {
		case "delivery-session", "delivery-group":
			if r.Caches != 40 {
				t.Errorf("%s: caches = %d, want 40", r.Scenario, r.Caches)
			}
			if r.Delivered == 0 {
				t.Errorf("%s: no deliveries recorded", r.Scenario)
			}
			if r.EgressBytesPerDest <= 0 {
				t.Errorf("%s: egress bytes/dest = %v, want > 0", r.Scenario, r.EgressBytesPerDest)
			}
			if r.Scenario == "delivery-group" && r.GroupBatches == 0 {
				t.Errorf("group delivery recorded no group batches")
			}
		default:
			if r.Updates == 0 || r.DurationS <= 0 {
				t.Errorf("%s: empty measurement (%d updates, %vs)", r.Scenario, r.Updates, r.DurationS)
			}
		}
	}
}
