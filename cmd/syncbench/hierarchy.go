package main

import (
	"fmt"
	"math"
	"net"
	"time"

	"bestsync/internal/metric"
	"bestsync/internal/runtime"
	"bestsync/internal/transport"
)

// hierarchyNodeResult is one cache node's slice of a hierarchy measurement.
type hierarchyNodeResult struct {
	NodeID         string  `json:"node_id"`
	Tier           string  `json:"tier"` // relay | leaf | flat
	Applied        int     `json:"applied"`
	MeanDivergence float64 `json:"mean_divergence"`
}

// hierarchyResult is one measured topology: either the 3-tier tree
// (source → relay → N leaves, the relay's intake and child sends sharing
// one adaptively split budget B while the source holds B/2) or the flat
// 1 → N+1 fan-out spending B on direct sessions over the same node count.
type hierarchyResult struct {
	Scenario           string                `json:"scenario"` // e.g. tree-local, flat-tcp
	Topology           string                `json:"topology"` // tree | flat
	Transport          string                `json:"transport"`
	Leaves             int                   `json:"leaves"`
	Objects            int                   `json:"objects"`
	DurationS          float64               `json:"duration_s"`
	TotalBandwidth     float64               `json:"total_bandwidth_msgs_per_s"`
	Updates            int                   `json:"updates"`
	SourceRefreshes    int                   `json:"source_refreshes"`
	RelayForwarded     int                   `json:"relay_forwarded,omitempty"`
	RelayLooped        int                   `json:"relay_looped,omitempty"`
	RelayUpBandwidth   float64               `json:"relay_up_bandwidth,omitempty"`   // final cache-face budget
	RelayDownBandwidth float64               `json:"relay_down_bandwidth,omitempty"` // final child-face budget
	MeanLeafDivergence float64               `json:"mean_leaf_divergence"`
	PerNode            []hierarchyNodeResult `json:"per_node"`
}

// runHierarchyMode compares the cache→cache hierarchy against flat fan-out
// on both transports: in the tree the source sends at B/2 and the relay
// runs intake + child sends under one shared, adaptively split budget B,
// while the flat topology spends B on direct source→cache sessions over
// the same N+1 cache nodes (each with processing budget B in both
// topologies). Results go to stdout and BENCH_hierarchy.json.
func runHierarchyMode(leaves, objects int, rate, bandwidth float64, duration time.Duration) {
	fmt.Printf("# cache→cache hierarchy: source → relay → %d leaves vs flat 1 → %d, %d objects, %.0f updates/s, %.0f msgs/s total budget, %s per topology\n\n",
		leaves, leaves+1, objects, rate, bandwidth, duration)
	fmt.Printf("%-12s %7s %10s %12s %12s %19s\n",
		"scenario", "leaves", "updates", "src refr", "relay fwd", "mean leaf diverg.")
	var results []hierarchyResult
	for _, tcp := range []bool{false, true} {
		for _, tree := range []bool{true, false} {
			r := measureHierarchy(tcp, tree, leaves, objects, rate, bandwidth, duration)
			results = append(results, r)
			fwd := "-"
			if tree {
				fwd = fmt.Sprintf("%d", r.RelayForwarded)
			}
			fmt.Printf("%-12s %7d %10d %12d %12s %19.4f\n",
				r.Scenario, r.Leaves, r.Updates, r.SourceRefreshes, fwd, r.MeanLeafDivergence)
		}
	}
	fmt.Println()
	for _, r := range results {
		fmt.Printf("# %s per-node breakdown:\n", r.Scenario)
		for _, nodeRes := range r.PerNode {
			fmt.Printf("  %-12s tier=%-6s applied=%6d divergence=%.4f\n",
				nodeRes.NodeID, nodeRes.Tier, nodeRes.Applied, nodeRes.MeanDivergence)
		}
	}
	// The relay-hop delivery-cost scenario rides the hierarchy benchmark: it
	// isolates the forward path the topology runs above measure end to end.
	relayCost := runRelayCost(leaves, 64, 2048)
	rows := make([]any, 0, len(results)+len(relayCost))
	for _, r := range results {
		rows = append(rows, r)
	}
	for _, r := range relayCost {
		rows = append(rows, r)
	}
	if err := writeBenchJSON("BENCH_hierarchy.json", rows); err != nil {
		fmt.Printf("syncbench: writing BENCH_hierarchy.json: %v\n", err)
		return
	}
	fmt.Println("\nwrote BENCH_hierarchy.json")
}

// benchNode is one cache node plus the plumbing to dial it and tear it down.
type benchNode struct {
	cache   *runtime.Cache
	dial    func(srcID string) transport.SourceConn
	cleanup func()
}

// newBenchNode starts a cache node on the requested transport.
func newBenchNode(tcp bool, id string, bandwidth float64) benchNode {
	return newBenchNodeCfg(tcp, runtime.CacheConfig{
		ID: id, Bandwidth: bandwidth, Tick: 10 * time.Millisecond,
	})
}

// newBenchNodeCfg starts a cache node from a full CacheConfig (the policy
// benchmark needs Policy/Poll set; the other benches use the defaults).
func newBenchNodeCfg(tcp bool, cfg runtime.CacheConfig) benchNode {
	if tcp {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		ep := transport.Serve(ln, 64)
		cache := runtime.NewCache(cfg, ep)
		addr := ln.Addr().String()
		return benchNode{
			cache: cache,
			dial: func(srcID string) transport.SourceConn {
				conn, err := transport.Dial(addr, srcID)
				if err != nil {
					panic(err)
				}
				return conn
			},
			cleanup: func() { cache.Close(); ep.Close() },
		}
	}
	local := transport.NewLocal(64)
	cache := runtime.NewCache(cfg, local)
	return benchNode{
		cache: cache,
		dial: func(srcID string) transport.SourceConn {
			conn, err := local.Dial(srcID)
			if err != nil {
				panic(err)
			}
			return conn
		},
		cleanup: func() { cache.Close(); local.Close() },
	}
}

// pacedRandomWalk drives src with a paced ±1 random walk over
// "<prefix>/obj-N" keys for the given duration, waits 150 ms for in-flight
// batches to land, and returns the canonical values plus the elapsed
// seconds. Shared by the fanout, hierarchy and dynamic benchmarks so their
// workloads stay comparable (the dynamic benchmark adds topology events —
// see pacedWalkWithEvents in dynamic.go, which implements the loop).
func pacedRandomWalk(src *runtime.Source, prefix string, objects int, rate float64, duration time.Duration) ([]float64, float64) {
	return pacedWalkWithEvents(src, prefix, objects, rate, duration, nil)
}

// meanAbsDivergence audits a cache against the canonical values: mean
// |canonical − cached| per object, counting missing entries at full
// deviation.
func meanAbsDivergence(c *runtime.Cache, prefix string, values []float64) float64 {
	div := 0.0
	for k, v := range values {
		e, _ := c.Get(fmt.Sprintf("%s/obj-%d", prefix, k))
		div += math.Abs(v - e.Value)
	}
	return div / float64(len(values))
}

// measureHierarchy runs one topology and audits final divergence at every
// cache node against the canonical values.
func measureHierarchy(tcp, tree bool, leaves, objects int, rate, bandwidth float64, duration time.Duration) hierarchyResult {
	transportName := "local"
	if tcp {
		transportName = "tcp"
	}
	topology := "flat"
	if tree {
		topology = "tree"
	}
	res := hierarchyResult{
		Scenario:       topology + "-" + transportName,
		Topology:       topology,
		Transport:      transportName,
		Leaves:         leaves,
		Objects:        objects,
		TotalBandwidth: bandwidth,
	}

	// Leaf caches exist in both topologies; their processing budget mirrors
	// the total network budget so the bottleneck under test is the send
	// path, not the apply path.
	leafNodes := make([]benchNode, leaves)
	for i := range leafNodes {
		leafNodes[i] = newBenchNode(tcp, fmt.Sprintf("leaf-%d", i), bandwidth)
	}
	var cleanups []func()
	for _, n := range leafNodes {
		cleanups = append(cleanups, n.cleanup)
	}

	var (
		src      *runtime.Source
		relay    *runtime.Relay
		hubCache *runtime.Cache // flat: the cache standing where the relay would be
		err      error
	)
	if tree {
		// source --B/2--> relay --B/2--> N leaves.
		children := make([]runtime.Destination, leaves)
		for i, n := range leafNodes {
			children[i] = runtime.Destination{CacheID: n.cache.ID(), Conn: n.dial("bench-relay")}
		}
		var upstream transport.CacheEndpoint
		var upConn transport.SourceConn
		if tcp {
			ln, lerr := net.Listen("tcp", "127.0.0.1:0")
			if lerr != nil {
				panic(lerr)
			}
			upstream = transport.Serve(ln, 64)
			upConn, err = transport.Dial(ln.Addr().String(), "bench-root")
			if err != nil {
				panic(err)
			}
		} else {
			local := transport.NewLocal(64)
			upstream = local
			upConn, err = local.Dial("bench-root")
			if err != nil {
				panic(err)
			}
		}
		// The relay runs both faces under ONE shared budget B — tighter
		// than the old fixed configuration (intake B plus a hard-coded
		// child face of B/2, i.e. 1.5B of relay capacity) and no more
		// than the flat hub cache's processing budget alone. The split
		// starts at half each and rebalances from observed backlog, so
		// intake capacity the B/2-limited upstream cannot fill shifts to
		// the child face instead of sitting idle. Note the tree's child
		// face can therefore SEND more than the old B/2 (up to ~0.8B
		// when intake is cheap); origin egress — the headline metric —
		// is unaffected (the source still holds B/2).
		relay, err = runtime.NewRelay(runtime.RelayConfig{
			ID:             "bench-relay",
			Cache:          runtime.CacheConfig{Tick: 10 * time.Millisecond},
			TotalBandwidth: bandwidth,
			Rebalance:      250 * time.Millisecond,
			Metric:         metric.ValueDeviation,
			Tick:           10 * time.Millisecond,
		}, upstream, children)
		if err != nil {
			panic(err)
		}
		cleanups = append(cleanups, func() { upstream.Close() })
		src, err = runtime.NewFanoutSource(runtime.SourceConfig{
			ID: "bench-root", Metric: metric.ValueDeviation,
			Bandwidth: bandwidth / 2, Tick: 10 * time.Millisecond,
		}, []runtime.Destination{{CacheID: "bench-relay", Conn: upConn}})
		if err != nil {
			panic(err)
		}
	} else {
		// source --B--> N+1 caches (the would-be relay is just another
		// direct destination).
		hub := newBenchNode(tcp, "hub", bandwidth)
		hubCache = hub.cache
		cleanups = append(cleanups, hub.cleanup)
		dests := make([]runtime.Destination, 0, leaves+1)
		dests = append(dests, runtime.Destination{CacheID: "hub", Conn: hub.dial("bench-root")})
		for _, n := range leafNodes {
			dests = append(dests, runtime.Destination{CacheID: n.cache.ID(), Conn: n.dial("bench-root")})
		}
		src, err = runtime.NewFanoutSource(runtime.SourceConfig{
			ID: "bench-root", Metric: metric.ValueDeviation,
			Bandwidth: bandwidth, Tick: 10 * time.Millisecond,
		}, dests)
		if err != nil {
			panic(err)
		}
	}

	values, elapsed := pacedRandomWalk(src, "bench-root", objects, rate, duration)
	res.DurationS = elapsed
	audit := func(c *runtime.Cache) float64 {
		return meanAbsDivergence(c, "bench-root", values)
	}

	st := src.Stats()
	res.Updates = st.Updates
	res.SourceRefreshes = st.Refreshes
	if tree {
		rst := relay.Stats()
		res.RelayForwarded = rst.Forwarded
		res.RelayLooped = rst.Looped
		res.RelayUpBandwidth = rst.UpBandwidth
		res.RelayDownBandwidth = rst.DownBandwidth
		res.PerNode = append(res.PerNode, hierarchyNodeResult{
			NodeID: relay.ID(), Tier: "relay",
			Applied:        rst.Upstream.Refreshes,
			MeanDivergence: audit(relay.Cache()),
		})
	} else {
		res.PerNode = append(res.PerNode, hierarchyNodeResult{
			NodeID: "hub", Tier: "flat",
			Applied:        hubCache.Stats().Refreshes,
			MeanDivergence: audit(hubCache),
		})
	}
	total := 0.0
	for _, n := range leafNodes {
		d := audit(n.cache)
		total += d
		res.PerNode = append(res.PerNode, hierarchyNodeResult{
			NodeID: n.cache.ID(), Tier: "leaf",
			Applied:        n.cache.Stats().Refreshes,
			MeanDivergence: d,
		})
	}
	res.MeanLeafDivergence = total / float64(leaves)

	src.Close() // stop the upstream flow before tearing down the tiers below
	if tree {
		relay.Close()
	}
	for _, f := range cleanups {
		f()
	}
	return res
}
