package main

import (
	"fmt"
	"math"
	"net"
	"time"

	"bestsync/internal/metric"
	"bestsync/internal/runtime"
	"bestsync/internal/transport"
)

// hierarchyNodeResult is one cache node's slice of a hierarchy measurement.
type hierarchyNodeResult struct {
	NodeID         string  `json:"node_id"`
	Tier           string  `json:"tier"` // relay | leaf | flat
	Applied        int     `json:"applied"`
	MeanDivergence float64 `json:"mean_divergence"`
}

// hierarchyResult is one measured topology: either the 3-tier tree
// (source → relay → N leaves) or the flat 1 → N+1 fan-out over the same
// node count, at equal total network bandwidth.
type hierarchyResult struct {
	Scenario           string                `json:"scenario"` // e.g. tree-local, flat-tcp
	Topology           string                `json:"topology"` // tree | flat
	Transport          string                `json:"transport"`
	Leaves             int                   `json:"leaves"`
	Objects            int                   `json:"objects"`
	DurationS          float64               `json:"duration_s"`
	TotalBandwidth     float64               `json:"total_bandwidth_msgs_per_s"`
	Updates            int                   `json:"updates"`
	SourceRefreshes    int                   `json:"source_refreshes"`
	RelayForwarded     int                   `json:"relay_forwarded,omitempty"`
	RelayLooped        int                   `json:"relay_looped,omitempty"`
	MeanLeafDivergence float64               `json:"mean_leaf_divergence"`
	PerNode            []hierarchyNodeResult `json:"per_node"`
}

// runHierarchyMode compares the cache→cache hierarchy against flat fan-out
// on both transports: a tree spends half the total budget on the
// source→relay hop and half on relay→leaves, while the flat topology spends
// the whole budget on direct source→cache sessions over the same N+1 cache
// nodes. Results go to stdout and BENCH_hierarchy.json.
func runHierarchyMode(leaves, objects int, rate, bandwidth float64, duration time.Duration) {
	fmt.Printf("# cache→cache hierarchy: source → relay → %d leaves vs flat 1 → %d, %d objects, %.0f updates/s, %.0f msgs/s total budget, %s per topology\n\n",
		leaves, leaves+1, objects, rate, bandwidth, duration)
	fmt.Printf("%-12s %7s %10s %12s %12s %19s\n",
		"scenario", "leaves", "updates", "src refr", "relay fwd", "mean leaf diverg.")
	var results []hierarchyResult
	for _, tcp := range []bool{false, true} {
		for _, tree := range []bool{true, false} {
			r := measureHierarchy(tcp, tree, leaves, objects, rate, bandwidth, duration)
			results = append(results, r)
			fwd := "-"
			if tree {
				fwd = fmt.Sprintf("%d", r.RelayForwarded)
			}
			fmt.Printf("%-12s %7d %10d %12d %12s %19.4f\n",
				r.Scenario, r.Leaves, r.Updates, r.SourceRefreshes, fwd, r.MeanLeafDivergence)
		}
	}
	fmt.Println()
	for _, r := range results {
		fmt.Printf("# %s per-node breakdown:\n", r.Scenario)
		for _, nodeRes := range r.PerNode {
			fmt.Printf("  %-12s tier=%-6s applied=%6d divergence=%.4f\n",
				nodeRes.NodeID, nodeRes.Tier, nodeRes.Applied, nodeRes.MeanDivergence)
		}
	}
	if err := writeBenchJSON("BENCH_hierarchy.json", results); err != nil {
		fmt.Printf("syncbench: writing BENCH_hierarchy.json: %v\n", err)
		return
	}
	fmt.Println("\nwrote BENCH_hierarchy.json")
}

// benchNode is one cache node plus the plumbing to dial it and tear it down.
type benchNode struct {
	cache   *runtime.Cache
	dial    func(srcID string) transport.SourceConn
	cleanup func()
}

// newBenchNode starts a cache node on the requested transport.
func newBenchNode(tcp bool, id string, bandwidth float64) benchNode {
	if tcp {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		ep := transport.Serve(ln, 64)
		cache := runtime.NewCache(runtime.CacheConfig{
			ID: id, Bandwidth: bandwidth, Tick: 10 * time.Millisecond,
		}, ep)
		addr := ln.Addr().String()
		return benchNode{
			cache: cache,
			dial: func(srcID string) transport.SourceConn {
				conn, err := transport.Dial(addr, srcID)
				if err != nil {
					panic(err)
				}
				return conn
			},
			cleanup: func() { cache.Close(); ep.Close() },
		}
	}
	local := transport.NewLocal(64)
	cache := runtime.NewCache(runtime.CacheConfig{
		ID: id, Bandwidth: bandwidth, Tick: 10 * time.Millisecond,
	}, local)
	return benchNode{
		cache: cache,
		dial: func(srcID string) transport.SourceConn {
			conn, err := local.Dial(srcID)
			if err != nil {
				panic(err)
			}
			return conn
		},
		cleanup: func() { cache.Close(); local.Close() },
	}
}

// pacedRandomWalk drives src with a paced ±1 random walk over
// "<prefix>/obj-N" keys for the given duration, waits 150 ms for in-flight
// batches to land, and returns the canonical values plus the elapsed
// seconds. Shared by the fanout and hierarchy benchmarks so their workloads
// stay comparable.
func pacedRandomWalk(src *runtime.Source, prefix string, objects int, rate float64, duration time.Duration) ([]float64, float64) {
	values := make([]float64, objects)
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	start := time.Now()
	step := 1
	for time.Since(start) < duration {
		i := step % objects
		if step%2 == 0 {
			values[i]++
		} else {
			values[i]--
		}
		src.Update(fmt.Sprintf("%s/obj-%d", prefix, i), values[i])
		step++
		time.Sleep(interval)
	}
	time.Sleep(150 * time.Millisecond)
	return values, time.Since(start).Seconds()
}

// meanAbsDivergence audits a cache against the canonical values: mean
// |canonical − cached| per object, counting missing entries at full
// deviation.
func meanAbsDivergence(c *runtime.Cache, prefix string, values []float64) float64 {
	div := 0.0
	for k, v := range values {
		e, _ := c.Get(fmt.Sprintf("%s/obj-%d", prefix, k))
		div += math.Abs(v - e.Value)
	}
	return div / float64(len(values))
}

// measureHierarchy runs one topology and audits final divergence at every
// cache node against the canonical values.
func measureHierarchy(tcp, tree bool, leaves, objects int, rate, bandwidth float64, duration time.Duration) hierarchyResult {
	transportName := "local"
	if tcp {
		transportName = "tcp"
	}
	topology := "flat"
	if tree {
		topology = "tree"
	}
	res := hierarchyResult{
		Scenario:       topology + "-" + transportName,
		Topology:       topology,
		Transport:      transportName,
		Leaves:         leaves,
		Objects:        objects,
		TotalBandwidth: bandwidth,
	}

	// Leaf caches exist in both topologies; their processing budget mirrors
	// the total network budget so the bottleneck under test is the send
	// path, not the apply path.
	leafNodes := make([]benchNode, leaves)
	for i := range leafNodes {
		leafNodes[i] = newBenchNode(tcp, fmt.Sprintf("leaf-%d", i), bandwidth)
	}
	var cleanups []func()
	for _, n := range leafNodes {
		cleanups = append(cleanups, n.cleanup)
	}

	var (
		src      *runtime.Source
		relay    *runtime.Relay
		hubCache *runtime.Cache // flat: the cache standing where the relay would be
		err      error
	)
	if tree {
		// source --B/2--> relay --B/2--> N leaves.
		children := make([]runtime.Destination, leaves)
		for i, n := range leafNodes {
			children[i] = runtime.Destination{CacheID: n.cache.ID(), Conn: n.dial("bench-relay")}
		}
		var upstream transport.CacheEndpoint
		var upConn transport.SourceConn
		if tcp {
			ln, lerr := net.Listen("tcp", "127.0.0.1:0")
			if lerr != nil {
				panic(lerr)
			}
			upstream = transport.Serve(ln, 64)
			upConn, err = transport.Dial(ln.Addr().String(), "bench-root")
			if err != nil {
				panic(err)
			}
		} else {
			local := transport.NewLocal(64)
			upstream = local
			upConn, err = local.Dial("bench-root")
			if err != nil {
				panic(err)
			}
		}
		relay, err = runtime.NewRelay(runtime.RelayConfig{
			ID:             "bench-relay",
			Cache:          runtime.CacheConfig{Bandwidth: bandwidth, Tick: 10 * time.Millisecond},
			ChildBandwidth: bandwidth / 2,
			Metric:         metric.ValueDeviation,
			Tick:           10 * time.Millisecond,
		}, upstream, children)
		if err != nil {
			panic(err)
		}
		cleanups = append(cleanups, func() { upstream.Close() })
		src, err = runtime.NewFanoutSource(runtime.SourceConfig{
			ID: "bench-root", Metric: metric.ValueDeviation,
			Bandwidth: bandwidth / 2, Tick: 10 * time.Millisecond,
		}, []runtime.Destination{{CacheID: "bench-relay", Conn: upConn}})
		if err != nil {
			panic(err)
		}
	} else {
		// source --B--> N+1 caches (the would-be relay is just another
		// direct destination).
		hub := newBenchNode(tcp, "hub", bandwidth)
		hubCache = hub.cache
		cleanups = append(cleanups, hub.cleanup)
		dests := make([]runtime.Destination, 0, leaves+1)
		dests = append(dests, runtime.Destination{CacheID: "hub", Conn: hub.dial("bench-root")})
		for _, n := range leafNodes {
			dests = append(dests, runtime.Destination{CacheID: n.cache.ID(), Conn: n.dial("bench-root")})
		}
		src, err = runtime.NewFanoutSource(runtime.SourceConfig{
			ID: "bench-root", Metric: metric.ValueDeviation,
			Bandwidth: bandwidth, Tick: 10 * time.Millisecond,
		}, dests)
		if err != nil {
			panic(err)
		}
	}

	values, elapsed := pacedRandomWalk(src, "bench-root", objects, rate, duration)
	res.DurationS = elapsed
	audit := func(c *runtime.Cache) float64 {
		return meanAbsDivergence(c, "bench-root", values)
	}

	st := src.Stats()
	res.Updates = st.Updates
	res.SourceRefreshes = st.Refreshes
	if tree {
		rst := relay.Stats()
		res.RelayForwarded = rst.Forwarded
		res.RelayLooped = rst.Looped
		res.PerNode = append(res.PerNode, hierarchyNodeResult{
			NodeID: relay.ID(), Tier: "relay",
			Applied:        rst.Upstream.Refreshes,
			MeanDivergence: audit(relay.Cache()),
		})
	} else {
		res.PerNode = append(res.PerNode, hierarchyNodeResult{
			NodeID: "hub", Tier: "flat",
			Applied:        hubCache.Stats().Refreshes,
			MeanDivergence: audit(hubCache),
		})
	}
	total := 0.0
	for _, n := range leafNodes {
		d := audit(n.cache)
		total += d
		res.PerNode = append(res.PerNode, hierarchyNodeResult{
			NodeID: n.cache.ID(), Tier: "leaf",
			Applied:        n.cache.Stats().Refreshes,
			MeanDivergence: d,
		})
	}
	res.MeanLeafDivergence = total / float64(leaves)

	src.Close() // stop the upstream flow before tearing down the tiers below
	if tree {
		relay.Close()
	}
	for _, f := range cleanups {
		f()
	}
	return res
}
