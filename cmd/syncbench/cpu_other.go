//go:build !unix

package main

// processCPUNs has no portable implementation without getrusage; delivery
// results on non-unix platforms report zero CPU (and no speedup ratio)
// rather than a wall-clock number that would count pacing sleeps.
func processCPUNs() int64 { return 0 }
