package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestDynamicBenchSchema is the CI smoke for -dynamic: a short sweep must
// run end to end and emit a BENCH_dynamic.json that parses with exactly
// the documented schema (docs/operations.md) — unknown fields in the file
// mean the docs lag the code, a decode error means the reverse.
func TestDynamicBenchSchema(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	runDynamicMode(2, 24, 400, 120, 600*time.Millisecond)

	data, err := os.ReadFile(filepath.Join(dir, "BENCH_dynamic.json"))
	if err != nil {
		t.Fatalf("BENCH_dynamic.json not written: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var results []dynamicResult
	if err := dec.Decode(&results); err != nil {
		t.Fatalf("BENCH_dynamic.json does not match the documented schema: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d scenarios, want 4 (skew/churn × static/adaptive)", len(results))
	}
	want := map[string]bool{
		"skew-static": false, "skew-adaptive": true,
		"churn-static": false, "churn-adaptive": true,
	}
	for _, r := range results {
		adaptive, ok := want[r.Scenario]
		if !ok {
			t.Errorf("unexpected scenario %q", r.Scenario)
			continue
		}
		delete(want, r.Scenario)
		if r.Adaptive != adaptive {
			t.Errorf("%s: adaptive = %v, want %v", r.Scenario, r.Adaptive, adaptive)
		}
		if r.Caches != 2 || r.Objects != 24 || r.Transport != "local" {
			t.Errorf("%s: config = %d caches / %d objects / %q", r.Scenario, r.Caches, r.Objects, r.Transport)
		}
		if r.DurationS <= 0 || r.Updates == 0 {
			t.Errorf("%s: empty measurement (duration %v, updates %d)", r.Scenario, r.DurationS, r.Updates)
		}
		if adaptive && r.Rebalances == 0 {
			t.Errorf("%s: adaptive scenario recorded no rebalance passes", r.Scenario)
		}
		if !adaptive && r.Rebalances != 0 {
			t.Errorf("%s: static scenario recorded %d rebalance passes", r.Scenario, r.Rebalances)
		}
		if len(r.PerCache) != r.Caches {
			t.Errorf("%s: %d per-cache entries, want %d", r.Scenario, len(r.PerCache), r.Caches)
		}
		for _, c := range r.PerCache {
			if c.CacheID == "" || c.CapacityMsgsPerS <= 0 {
				t.Errorf("%s: malformed per-cache entry %+v", r.Scenario, c)
			}
		}
	}
	for missing := range want {
		t.Errorf("scenario %q missing from BENCH_dynamic.json", missing)
	}
}
