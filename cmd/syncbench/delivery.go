package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"bestsync/internal/metric"
	"bestsync/internal/runtime"
	"bestsync/internal/transport"
	"bestsync/internal/wire"
	"bestsync/internal/wire/codec"
)

// deliverySink is a destination that measures instead of applying: it
// counts refreshes and egress bytes and discards the payload. Standing in
// for a cache daemon keeps the delivery benchmark's CPU clock on the origin
// side — with 10k real caches in-process the receivers would dwarf the
// sender and the per-destination delivery cost would be unreadable.
//
// The sink implements transport.FrameSender, so it exercises the same
// encode paths the TCP binary codec does: a per-session Batcher encodes its
// own frame per destination, while group delivery hands every sink the same
// pre-encoded frame.
type deliverySink struct {
	id     string
	sent   atomic.Int64 // refreshes (batch path)
	frames atomic.Int64 // pre-encoded frames received
	bytes  atomic.Int64 // egress bytes (encoded size)
	fb     chan wire.Feedback
	polls  chan wire.Poll
	// progress is pulsed (non-blocking, cap 1) after every counter update so
	// a lockstep driver can block on delivery instead of sleep-polling: timer
	// sleeps burn measurable process CPU in wakeups, and they burn more in
	// whichever mode waits longer — a bias a CPU-differential benchmark like
	// the relay-cost scenario cannot afford.
	progress chan struct{}
}

func newDeliverySink(id string) *deliverySink {
	return &deliverySink{
		id:       id,
		fb:       make(chan wire.Feedback, 4),
		polls:    make(chan wire.Poll),
		progress: make(chan struct{}, 1),
	}
}

// pulse wakes a driver blocked on progress; counters are already updated.
func (s *deliverySink) pulse() {
	select {
	case s.progress <- struct{}{}:
	default:
	}
}

// ack plays the part of an underloaded cache: positive feedback after each
// received batch keeps the source's threshold engine in its sending regime
// for the whole window. Non-blocking — a slow reader just sees fewer acks,
// exactly like a real feedback channel under load.
func (s *deliverySink) ack() {
	select {
	case s.fb <- wire.Feedback{CacheID: s.id, SentUnix: time.Now().UnixNano()}:
	default:
	}
}

func (s *deliverySink) SendRefresh(r wire.Refresh) error { return s.SendBatch([]wire.Refresh{r}) }

func (s *deliverySink) SendBatch(rs []wire.Refresh) error {
	// Encode to measure what the wire would carry, mirroring a binary-codec
	// connection's per-send serialization.
	f := codec.NewBatchFrame(rs, time.Now().UnixNano())
	s.bytes.Add(int64(len(f.Bytes())))
	f.Release()
	s.sent.Add(int64(len(rs)))
	s.pulse()
	s.ack()
	return nil
}

func (s *deliverySink) SendFrame(f *codec.Frame) error {
	s.bytes.Add(int64(len(f.Bytes())))
	s.frames.Add(1)
	s.pulse()
	s.ack()
	return nil
}

func (s *deliverySink) FramesEnabled() bool              { return true }
func (s *deliverySink) Feedback() <-chan wire.Feedback   { return s.fb }
func (s *deliverySink) Polls() <-chan wire.Poll          { return s.polls }
func (s *deliverySink) SendReply(r wire.PollReply) error { return nil }

// Close leaves the feedback channel open: a sender worker may still be
// acking concurrently, and the owning session exits through its stop signal
// during teardown, not through a channel close.
func (s *deliverySink) Close() error { return nil }

// runDeliveryScales appends the encode-once delivery scenarios to the
// fan-out benchmark: for each N in scale, a per-session baseline (N ≤ 1000)
// and a session-group run over N measuring sinks, recording origin CPU per
// delivered refresh per destination and egress bytes per destination.
func runDeliveryScales(results []fanoutResult, scale []int, objects int, rate, destBW float64, duration time.Duration) []fanoutResult {
	if len(scale) == 0 {
		return results
	}
	fmt.Printf("\n# delivery cost: 1 source -> N measuring sinks, %.0f msgs/s per destination, %s per run\n\n",
		destBW, duration)
	fmt.Printf("%-18s %7s %12s %18s %14s %10s\n",
		"scenario", "dests", "delivered", "cpu ns/refr/dest", "bytes/dest", "speedup")
	for _, n := range scale {
		var base *fanoutResult
		if n <= 1000 {
			r := measureDelivery(false, n, objects, rate, destBW, duration)
			results = append(results, r)
			printDeliveryRow(r)
			base = &results[len(results)-1]
		} else {
			// Not a silent cap: the goroutine-per-session baseline is what
			// this PR replaces and is too heavy to time fairly at this N.
			fmt.Printf("# N=%d: skipping per-session baseline (group only)\n", n)
		}
		g := measureDelivery(true, n, objects, rate, destBW, duration)
		if base != nil && base.OriginCPUNsPerRefreshPerDest > 0 && g.OriginCPUNsPerRefreshPerDest > 0 {
			g.SpeedupVsSession = base.OriginCPUNsPerRefreshPerDest / g.OriginCPUNsPerRefreshPerDest
		}
		results = append(results, g)
		printDeliveryRow(g)
	}
	return results
}

func printDeliveryRow(r fanoutResult) {
	speedup := "-"
	if r.SpeedupVsSession > 0 {
		speedup = fmt.Sprintf("%.1fx", r.SpeedupVsSession)
	}
	fmt.Printf("%-18s %7d %12d %18.0f %14.1f %10s\n",
		r.Scenario, r.Caches, r.Delivered, r.OriginCPUNsPerRefreshPerDest, r.EgressBytesPerDest, speedup)
}

// measureDelivery runs one delivery-cost scenario: a fan-out source over n
// deliverySinks, driven by the shared paced random walk, timed with the
// process CPU clock (user+system) so sleeps in the pacing loop don't count.
// grouped selects session-group fan-out versus the per-session baseline
// (each sink behind its own Batcher, today's per-connection shape).
func measureDelivery(grouped bool, n, objects int, rate, destBW float64, duration time.Duration) fanoutResult {
	scenario := "delivery-session"
	mode := "session"
	if grouped {
		scenario = "delivery-group"
		mode = "group"
	}
	sinks := make([]*deliverySink, n)
	dests := make([]runtime.Destination, n)
	for i := range sinks {
		id := fmt.Sprintf("sink-%d", i)
		sinks[i] = newDeliverySink(id)
		var conn transport.SourceConn = sinks[i]
		if !grouped {
			conn = transport.NewBatcher(conn, transport.BatcherConfig{
				MaxBatch:   64,
				FlushEvery: 5 * time.Millisecond,
			})
		}
		dests[i] = runtime.Destination{CacheID: id, Conn: conn}
	}
	src, err := runtime.NewFanoutSource(runtime.SourceConfig{
		ID:        "bench-src",
		Metric:    metric.ValueDeviation,
		Bandwidth: destBW * float64(n),
		Tick:      10 * time.Millisecond,
		Group:     runtime.GroupConfig{Enabled: grouped},
	}, dests)
	if err != nil {
		panic(err)
	}

	cpu0 := processCPUNs()
	_, elapsed := pacedRandomWalk(src, "bench-src", objects, rate, duration)
	cpuNs := processCPUNs() - cpu0
	st := src.Stats()
	src.Close()

	res := fanoutResult{
		Scenario:       scenario,
		Mode:           mode,
		Caches:         n,
		Objects:        objects,
		DurationS:      elapsed,
		BandwidthMsgsS: destBW * float64(n),
		Updates:        st.Updates,
		Refreshes:      st.Refreshes,
		RefreshesPerS:  float64(st.Refreshes) / elapsed,
		Delivered:      st.Refreshes,
		OriginCPUNs:    cpuNs,
	}
	var bytes int64
	for _, s := range sinks {
		bytes += s.bytes.Load()
	}
	res.EgressBytesPerDest = float64(bytes) / float64(n)
	if res.Delivered > 0 {
		res.OriginCPUNsPerRefreshPerDest = float64(cpuNs) / float64(res.Delivered)
	}
	if st.Group != nil {
		res.GroupBatches = int64(st.Group.Batches)
	}
	return res
}
