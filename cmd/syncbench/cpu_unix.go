//go:build unix

package main

import "syscall"

// processCPUNs returns the process's cumulative user+system CPU time in
// nanoseconds — the clock the delivery benchmark normalizes per delivered
// refresh, so time spent sleeping in the pacing loop doesn't count.
func processCPUNs() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	sec := int64(ru.Utime.Sec) + int64(ru.Stime.Sec)
	usec := int64(ru.Utime.Usec) + int64(ru.Stime.Usec)
	return sec*1_000_000_000 + usec*1_000
}
