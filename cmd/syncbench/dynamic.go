package main

import (
	"fmt"
	"time"

	"bestsync/internal/metric"
	"bestsync/internal/runtime"
)

// dynamicRebalanceEvery is the re-allocation interval used by the adaptive
// scenarios: short enough for several passes inside even a CI-smoke
// measurement window, long enough for each window to observe real feedback.
const dynamicRebalanceEvery = 250 * time.Millisecond

// dynamicCacheResult is one cache's slice of a dynamic-shares measurement.
type dynamicCacheResult struct {
	CacheID          string  `json:"cache_id"`
	CapacityMsgsPerS float64 `json:"capacity_msgs_per_s"`
	Applied          int     `json:"applied"`
	Feedbacks        int     `json:"feedbacks"`
	ShareMsgsPerS    float64 `json:"share_msgs_per_s"` // final allocated share
	Weight           float64 `json:"weight"`           // final effective weight
	MeanDivergence   float64 `json:"mean_divergence"`
}

// dynamicResult is one measured scenario of the static-vs-adaptive share
// comparison.
type dynamicResult struct {
	Scenario        string               `json:"scenario"` // <workload>-<static|adaptive>
	Workload        string               `json:"workload"` // skew | churn
	Adaptive        bool                 `json:"adaptive"`
	Transport       string               `json:"transport"`
	Caches          int                  `json:"caches"`
	Objects         int                  `json:"objects"`
	DurationS       float64              `json:"duration_s"`
	BandwidthMsgsS  float64              `json:"bandwidth_msgs_per_s"`
	RebalanceEveryS float64              `json:"rebalance_every_s,omitempty"`
	Updates         int                  `json:"updates"`
	Refreshes       int                  `json:"refreshes"`
	Rebalances      int                  `json:"rebalances"`
	MeanDivergence  float64              `json:"mean_divergence"`
	PerCache        []dynamicCacheResult `json:"per_cache"`
}

// runDynamicMode compares static equal shares against live re-allocation on
// two workloads where a fixed construction-time split is wrong:
//
//   - skew: destination capacities are skewed — one cache can absorb only a
//     tenth of the others' rate, so an equal split wastes budget on a
//     saturated cache that stopped feeding back. Adaptive shares shift the
//     waste to the starved-but-responsive caches.
//   - churn: the destination set changes mid-run — a cache leaves and a
//     fresh (empty) one joins, exercising RemoveDestination/AddDestination
//     on a live source. Adaptive shares additionally give the newcomer a
//     demand-driven boost while it re-synchronizes the whole store.
//
// Results go to stdout and BENCH_dynamic.json.
func runDynamicMode(caches, objects int, rate, bandwidth float64, duration time.Duration) {
	fmt.Printf("# dynamic shares: 1 source -> %d caches, %d objects, %.0f updates/s, %.0f msgs/s budget, %s per scenario, rebalance %s\n\n",
		caches, objects, rate, bandwidth, duration, dynamicRebalanceEvery)
	fmt.Printf("%-16s %7s %10s %12s %12s %16s\n",
		"scenario", "caches", "updates", "refreshes", "rebalances", "mean divergence")
	var results []dynamicResult
	byScenario := map[string]float64{}
	for _, workload := range []string{"skew", "churn"} {
		for _, adaptive := range []bool{false, true} {
			r := measureDynamic(workload, adaptive, caches, objects, rate, bandwidth, duration)
			results = append(results, r)
			byScenario[r.Scenario] = r.MeanDivergence
			fmt.Printf("%-16s %7d %10d %12d %12d %16.4f\n",
				r.Scenario, r.Caches, r.Updates, r.Refreshes, r.Rebalances, r.MeanDivergence)
		}
	}
	fmt.Println()
	for _, r := range results {
		fmt.Printf("# %s per-cache breakdown:\n", r.Scenario)
		for _, c := range r.PerCache {
			fmt.Printf("  %-12s capacity=%6.1f/s share=%6.1f/s weight=%-10.4g applied=%6d feedback=%4d divergence=%.4f\n",
				c.CacheID, c.CapacityMsgsPerS, c.ShareMsgsPerS, c.Weight, c.Applied, c.Feedbacks, c.MeanDivergence)
		}
	}
	for _, workload := range []string{"skew", "churn"} {
		static, adaptive := byScenario[workload+"-static"], byScenario[workload+"-adaptive"]
		if static > 0 {
			fmt.Printf("\n# %s: adaptive mean divergence %.4f vs static %.4f (%+.1f%%)",
				workload, adaptive, static, 100*(adaptive-static)/static)
		}
	}
	fmt.Println()
	if err := writeBenchJSON("BENCH_dynamic.json", results); err != nil {
		fmt.Printf("syncbench: writing BENCH_dynamic.json: %v\n", err)
		return
	}
	fmt.Println("\nwrote BENCH_dynamic.json")
}

// topoEvent is a topology change fired from the workload loop at a fixed
// offset into the measurement window.
type topoEvent struct {
	after time.Duration
	fn    func()
}

// pacedWalkWithEvents is pacedRandomWalk plus scheduled topology events:
// the same paced ±1 random walk, firing each event once as its offset
// passes, so churn happens at a deterministic point of the workload.
func pacedWalkWithEvents(src *runtime.Source, prefix string, objects int, rate float64, duration time.Duration, events []topoEvent) ([]float64, float64) {
	values := make([]float64, objects)
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	start := time.Now()
	step := 1
	next := 0
	for {
		elapsed := time.Since(start)
		if elapsed >= duration {
			break
		}
		for next < len(events) && elapsed >= events[next].after {
			events[next].fn()
			next++
		}
		i := step % objects
		if step%2 == 0 {
			values[i]++
		} else {
			values[i]--
		}
		src.Update(fmt.Sprintf("%s/obj-%d", prefix, i), values[i])
		step++
		time.Sleep(interval)
	}
	for next < len(events) { // fire stragglers even on a tiny window
		events[next].fn()
		next++
	}
	time.Sleep(150 * time.Millisecond)
	return values, time.Since(start).Seconds()
}

// measureDynamic runs one scenario and audits every cache present at the
// end against the canonical values.
func measureDynamic(workload string, adaptive bool, caches, objects int, rate, bandwidth float64, duration time.Duration) dynamicResult {
	suffix := "static"
	if adaptive {
		suffix = "adaptive"
	}
	res := dynamicResult{
		Scenario:       workload + "-" + suffix,
		Workload:       workload,
		Adaptive:       adaptive,
		Transport:      "local",
		Caches:         caches,
		Objects:        objects,
		BandwidthMsgsS: bandwidth,
	}
	if adaptive {
		res.RebalanceEveryS = dynamicRebalanceEvery.Seconds()
	}

	// Capacities: ample everywhere except the last cache of the skew
	// workload, which can absorb only a tenth of its equal share — the
	// saturated destination an equal split wastes budget on.
	capacity := func(i int) float64 {
		if workload == "skew" && i == caches-1 {
			return bandwidth / 10
		}
		return bandwidth * 10
	}
	nodes := make([]benchNode, caches)
	caps := make([]float64, caches)
	dests := make([]runtime.Destination, caches)
	for i := range nodes {
		caps[i] = capacity(i)
		nodes[i] = newBenchNode(false, fmt.Sprintf("dyn-%d", i), caps[i])
		dests[i] = runtime.Destination{CacheID: nodes[i].cache.ID(), Conn: nodes[i].dial("bench-dyn")}
	}
	rebalance := time.Duration(0)
	if adaptive {
		rebalance = dynamicRebalanceEvery
	}
	src, err := runtime.NewFanoutSource(runtime.SourceConfig{
		ID:        "bench-dyn",
		Metric:    metric.ValueDeviation,
		Bandwidth: bandwidth,
		Tick:      10 * time.Millisecond,
		Rebalance: rebalance,
	}, dests)
	if err != nil {
		panic(err)
	}

	// Churn: the last cache leaves a third of the way in; a fresh, empty
	// replacement joins at two thirds and must be re-synchronized from
	// scratch while the survivors keep their flow.
	var events []topoEvent
	if workload == "churn" {
		leaver := nodes[caches-1].cache.ID()
		events = []topoEvent{
			{after: duration / 3, fn: func() {
				if err := src.RemoveDestination(leaver); err != nil {
					panic(err)
				}
			}},
			{after: 2 * duration / 3, fn: func() {
				reborn := newBenchNode(false, "dyn-reborn", capacity(0))
				if err := src.AddDestination(runtime.Destination{
					CacheID: reborn.cache.ID(), Conn: reborn.dial("bench-dyn"),
				}); err != nil {
					panic(err)
				}
				nodes[caches-1].cleanup() // the departed node is gone for good
				nodes[caches-1] = reborn
				caps[caches-1] = capacity(0)
			}},
		}
	}

	values, elapsed := pacedWalkWithEvents(src, "bench-dyn", objects, rate, duration, events)
	res.DurationS = elapsed

	st := src.Stats()
	res.Updates = st.Updates
	res.Refreshes = st.Refreshes
	res.Rebalances = st.Rebalances
	sessions := map[string]runtime.SessionStats{}
	for _, sess := range st.Sessions {
		sessions[sess.CacheID] = sess
	}
	total := 0.0
	for i, node := range nodes {
		div := meanAbsDivergence(node.cache, "bench-dyn", values)
		total += div
		sess := sessions[node.cache.ID()]
		res.PerCache = append(res.PerCache, dynamicCacheResult{
			CacheID:          node.cache.ID(),
			CapacityMsgsPerS: caps[i],
			Applied:          node.cache.Stats().Refreshes,
			Feedbacks:        sess.Feedbacks,
			ShareMsgsPerS:    sess.Share,
			Weight:           sess.Weight,
			MeanDivergence:   div,
		})
	}
	res.MeanDivergence = total / float64(len(nodes))

	src.Close()
	for _, node := range nodes {
		node.cleanup()
	}
	return res
}
