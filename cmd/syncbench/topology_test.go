package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestTopologyBenchSchema is the CI smoke for -topology: a short run must
// measure all three shapes and emit a BENCH_topology.json that parses with
// exactly the documented schema (docs/operations.md) — unknown fields in the
// file mean the docs lag the code, a decode error means the reverse. It also
// pins the PR's headline property: the cooperative shapes serve a measurable
// share of refreshes laterally while sending less from the origin than the
// direct tree at the same total budget.
func TestTopologyBenchSchema(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	runTopologyMode(4, 24, 400, 120, 1200*time.Millisecond)

	data, err := os.ReadFile(filepath.Join(dir, "BENCH_topology.json"))
	if err != nil {
		t.Fatalf("BENCH_topology.json not written: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var results []topologyResult
	if err := dec.Decode(&results); err != nil {
		t.Fatalf("BENCH_topology.json does not match the documented schema: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d scenarios, want 3 (tree, ring, mesh)", len(results))
	}
	byShape := map[string]topologyResult{}
	for _, r := range results {
		byShape[r.Scenario] = r
		if r.Nodes != 4 || r.Objects != 24 || r.TotalBandwidth != 120 {
			t.Errorf("%s: config = %d nodes / %d objects / %.0f msgs/s", r.Scenario, r.Nodes, r.Objects, r.TotalBandwidth)
		}
		if r.DurationS <= 0 || r.Updates == 0 {
			t.Errorf("%s: empty measurement (duration %v, updates %d)", r.Scenario, r.DurationS, r.Updates)
		}
		if r.OriginEgress == 0 || r.TotalApplied == 0 {
			t.Errorf("%s: no traffic measured (egress %d, applied %d)", r.Scenario, r.OriginEgress, r.TotalApplied)
		}
		if len(r.PerNode) != 4 {
			t.Errorf("%s: %d per-node rows, want 4", r.Scenario, len(r.PerNode))
		}
	}
	tree, ok := byShape["tree"]
	if !ok {
		t.Fatal("tree scenario missing")
	}
	if tree.PeerServed != 0 || tree.Forwarded != 0 {
		t.Errorf("tree: lateral counters nonzero (peer_served %d, forwarded %d)", tree.PeerServed, tree.Forwarded)
	}
	if tree.OriginBandwidth != 120 {
		t.Errorf("tree: origin bandwidth %.0f, want the full budget 120", tree.OriginBandwidth)
	}
	for _, shape := range []string{"ring", "mesh"} {
		r, ok := byShape[shape]
		if !ok {
			t.Fatalf("%s scenario missing", shape)
		}
		if r.OriginBandwidth != 60 {
			t.Errorf("%s: origin bandwidth %.0f, want half the budget 60", shape, r.OriginBandwidth)
		}
		if r.PeerServed == 0 {
			t.Errorf("%s: no refreshes served laterally (peer_served = 0)", shape)
		}
		if r.OriginEgress >= tree.OriginEgress {
			t.Errorf("%s: origin egress %d not below the tree's %d at equal total budget",
				shape, r.OriginEgress, tree.OriginEgress)
		}
	}
}
