package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestPolicyBenchSchema is the CI smoke for -policy: a short sweep must run
// every policy over both transports and emit a BENCH_policy.json that
// parses with exactly the documented schema (docs/operations.md) — unknown
// fields in the file mean the docs lag the code, a decode error means the
// reverse.
func TestPolicyBenchSchema(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	runPolicyMode(24, 400, 120, 900*time.Millisecond, 300*time.Millisecond)

	data, err := os.ReadFile(filepath.Join(dir, "BENCH_policy.json"))
	if err != nil {
		t.Fatalf("BENCH_policy.json not written: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var results []policyResult
	if err := dec.Decode(&results); err != nil {
		t.Fatalf("BENCH_policy.json does not match the documented schema: %v", err)
	}
	if len(results) != 8 {
		t.Fatalf("got %d scenarios, want 8 (4 policies × 2 transports)", len(results))
	}
	want := map[string]float64{} // scenario → msg cost
	for _, transport := range []string{"local", "tcp"} {
		want["push-"+transport] = 1
		want["ideal-"+transport] = 1
		want["cgm1-"+transport] = 2
		want["cgm2-"+transport] = 2
	}
	for _, r := range results {
		cost, ok := want[r.Scenario]
		if !ok {
			t.Errorf("unexpected scenario %q", r.Scenario)
			continue
		}
		delete(want, r.Scenario)
		if r.MsgCost != cost {
			t.Errorf("%s: msg cost = %v, want %v", r.Scenario, r.MsgCost, cost)
		}
		if r.Objects != 24 || r.BandwidthMsgsS != 120 {
			t.Errorf("%s: config = %d objects / %.0f msgs/s", r.Scenario, r.Objects, r.BandwidthMsgsS)
		}
		if r.DurationS <= 0 || r.Updates == 0 {
			t.Errorf("%s: empty measurement (duration %v, updates %d)", r.Scenario, r.DurationS, r.Updates)
		}
		if r.Refreshes == 0 || r.Messages == 0 {
			t.Errorf("%s: no traffic measured (refreshes %d, messages %d)", r.Scenario, r.Refreshes, r.Messages)
		}
		if r.Policy == "push" {
			if r.Polls != 0 || r.Resolves != 0 {
				t.Errorf("%s: push scenario recorded poll counters (%d/%d)", r.Scenario, r.Polls, r.Resolves)
			}
		} else {
			if r.Polls == 0 {
				t.Errorf("%s: poll scenario sent no polls", r.Scenario)
			}
			if r.Resolves == 0 {
				t.Errorf("%s: poll scenario never re-solved", r.Scenario)
			}
		}
	}
	for missing := range want {
		t.Errorf("scenario %q missing from BENCH_policy.json", missing)
	}
}
