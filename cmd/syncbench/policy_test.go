package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestPolicyBenchSchema is the CI smoke for -policy: a short sweep must run
// every policy over both transports and emit a BENCH_policy.json that
// parses with exactly the documented schema (docs/operations.md) — unknown
// fields in the file mean the docs lag the code, a decode error means the
// reverse.
func TestPolicyBenchSchema(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	runPolicyMode(24, 400, 120, 900*time.Millisecond, 300*time.Millisecond, []float64{1.3})

	data, err := os.ReadFile(filepath.Join(dir, "BENCH_policy.json"))
	if err != nil {
		t.Fatalf("BENCH_policy.json not written: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var results []policyResult
	if err := dec.Decode(&results); err != nil {
		t.Fatalf("BENCH_policy.json does not match the documented schema: %v", err)
	}
	if len(results) != 20 {
		t.Fatalf("got %d scenarios, want 20 (5 policies × 2 transports × 2 workloads)", len(results))
	}
	want := map[string]float64{} // scenario → msg cost
	for _, suffix := range []string{"", "-z1.3"} {
		for _, transport := range []string{"local", "tcp"} {
			want["push-"+transport+suffix] = 1
			want["ideal-"+transport+suffix] = 1
			want["cgm1-"+transport+suffix] = 2
			want["cgm2-"+transport+suffix] = 2
			want["hybrid-"+transport+suffix] = 2
		}
	}
	for _, r := range results {
		cost, ok := want[r.Scenario]
		if !ok {
			t.Errorf("unexpected scenario %q", r.Scenario)
			continue
		}
		delete(want, r.Scenario)
		if r.MsgCost != cost {
			t.Errorf("%s: msg cost = %v, want %v", r.Scenario, r.MsgCost, cost)
		}
		if r.Objects != 24 || r.BandwidthMsgsS != 120 {
			t.Errorf("%s: config = %d objects / %.0f msgs/s", r.Scenario, r.Objects, r.BandwidthMsgsS)
		}
		if r.DurationS <= 0 || r.Updates == 0 {
			t.Errorf("%s: empty measurement (duration %v, updates %d)", r.Scenario, r.DurationS, r.Updates)
		}
		if r.Refreshes == 0 || r.Messages == 0 {
			t.Errorf("%s: no traffic measured (refreshes %d, messages %d)", r.Scenario, r.Refreshes, r.Messages)
		}
		zipf := strings.HasSuffix(r.Scenario, "-z1.3")
		if zipf != (r.ZipfS == 1.3) {
			t.Errorf("%s: zipf_s = %v", r.Scenario, r.ZipfS)
		}
		switch r.Policy {
		case "push":
			if r.Polls != 0 || r.Resolves != 0 {
				t.Errorf("%s: push scenario recorded poll counters (%d/%d)", r.Scenario, r.Polls, r.Resolves)
			}
			if r.PushObjects != 0 || r.PollObjects != 0 || r.Promotions != 0 || r.Demotions != 0 {
				t.Errorf("%s: push scenario recorded hybrid counters", r.Scenario)
			}
		case "hybrid":
			if r.Polls == 0 {
				t.Errorf("%s: hybrid scenario sent no polls", r.Scenario)
			}
			// The sets cover the source's observed universe — on a skewed
			// walk the coldest objects may never be updated inside a short
			// window, so the cover can fall short of the configured count.
			if total := r.PushObjects + r.PollObjects; total == 0 || total > 24 {
				t.Errorf("%s: push+poll sets cover %d objects, want 1..24", r.Scenario, total)
			}
			if r.Promotions == 0 {
				t.Errorf("%s: migration controller never promoted an object", r.Scenario)
			}
		default:
			if r.Polls == 0 {
				t.Errorf("%s: poll scenario sent no polls", r.Scenario)
			}
			if r.Resolves == 0 {
				t.Errorf("%s: poll scenario never re-solved", r.Scenario)
			}
		}
	}
	for missing := range want {
		t.Errorf("scenario %q missing from BENCH_policy.json", missing)
	}
}
