package main

import (
	"fmt"
	stdruntime "runtime"
	"runtime/debug"
	"sync"
	"time"

	"bestsync/internal/core"
	"bestsync/internal/metric"
	"bestsync/internal/runtime"
	"bestsync/internal/transport"
	"bestsync/internal/wire"
	"bestsync/internal/wire/codec"
)

// Relay-hop scenario modes: the apply-only baseline (a plain cache, no
// children — everything below it is cost both forward paths share), the
// classic decode→re-schedule→re-encode re-export, and splice forwarding.
const (
	relayModeApply   = "apply"
	relayModeClassic = "classic"
	relayModeSplice  = "splice"
)

// relayCostResult is one relay-hop delivery-cost measurement. The totals
// (relay_cpu_ns_per_refresh, allocs_per_refresh) cover the whole hop — apply
// plus re-export; the forward_* fields subtract the apply-only baseline run,
// isolating what the re-export machinery itself costs per refresh. The
// speedup compares the classic and splice FORWARD costs, since the shared
// apply path is identical by construction.
type relayCostResult struct {
	Scenario                string  `json:"scenario"` // relay-apply | relay-classic | relay-splice
	Mode                    string  `json:"mode"`     // apply | classic | splice
	Children                int     `json:"children"`
	BatchSize               int     `json:"batch_size"`
	Batches                 int     `json:"batches"` // measured batches (after warmup)
	Forwarded               int     `json:"forwarded"`
	SplicedBatches          int     `json:"spliced_batches"`
	SplicedRefreshes        int     `json:"spliced_refreshes"`
	SpliceFallbacks         int     `json:"splice_fallbacks"`
	DeliveredFrames         int64   `json:"delivered_frames"`
	EgressBytes             int64   `json:"egress_bytes"`
	RelayCPUNsPerRefresh    float64 `json:"relay_cpu_ns_per_refresh"`
	AllocsPerRefresh        float64 `json:"allocs_per_refresh"`
	AllocBytesPerRefresh    float64 `json:"alloc_bytes_per_refresh"`
	ForwardCPUNsPerRefresh  float64 `json:"forward_cpu_ns_per_refresh,omitempty"`
	ForwardAllocsPerRefresh float64 `json:"forward_allocs_per_refresh,omitempty"`
	SpeedupVsClassic        float64 `json:"speedup_vs_classic,omitempty"`
}

// relayFeed is a synthetic intake endpoint: pre-encoded framed batches are
// pushed straight into the relay's apply pipeline, exactly what a binary TCP
// server hands over after its decode — so the measurement window contains
// only the relay's own work (apply + re-export + child delivery), not the
// upstream sender's encode.
type relayFeed struct {
	batches   chan transport.InboundBatch
	closeOnce sync.Once
}

func newRelayFeed(depth int) *relayFeed {
	return &relayFeed{batches: make(chan transport.InboundBatch, depth)}
}

func (f *relayFeed) Batches() <-chan transport.InboundBatch   { return f.batches }
func (f *relayFeed) SendFeedback(string, wire.Feedback) error { return nil }
func (f *relayFeed) Sources() []string                        { return []string{"up"} }
func (f *relayFeed) Close() error {
	f.closeOnce.Do(func() { close(f.batches) })
	return nil
}

// runRelayCost measures the relay forward path at the issue's pinned shape —
// framed batches of batchSize refreshes, every one over-threshold — with
// splice forwarding on and off, against an apply-only baseline, and reports
// CPU ns and heap allocations per forwarded refresh.
func runRelayCost(children, batchSize, batches int) []relayCostResult {
	fmt.Printf("\n# relay-hop delivery cost: framed batch-%d intake -> %d children, %d batches; forward = total - apply-only baseline\n\n",
		batchSize, children, batches)
	fmt.Printf("%-14s %9s %15s %13s %13s %12s %9s\n",
		"scenario", "children", "cpu ns/refresh", "fwd ns/refr", "allocs/refr", "fwd allocs", "speedup")
	apply := measureRelayCost(relayModeApply, 0, batchSize, batches)
	classic := measureRelayCost(relayModeClassic, children, batchSize, batches)
	splice := measureRelayCost(relayModeSplice, children, batchSize, batches)
	diff := func(r *relayCostResult) {
		r.ForwardCPUNsPerRefresh = max(0, r.RelayCPUNsPerRefresh-apply.RelayCPUNsPerRefresh)
		r.ForwardAllocsPerRefresh = max(0, r.AllocsPerRefresh-apply.AllocsPerRefresh)
	}
	diff(&classic)
	diff(&splice)
	if classic.ForwardCPUNsPerRefresh > 0 && splice.ForwardCPUNsPerRefresh > 0 {
		splice.SpeedupVsClassic = classic.ForwardCPUNsPerRefresh / splice.ForwardCPUNsPerRefresh
	}
	printRelayCostRow(apply)
	printRelayCostRow(classic)
	printRelayCostRow(splice)
	return []relayCostResult{apply, classic, splice}
}

func printRelayCostRow(r relayCostResult) {
	fwdNs, fwdAllocs, speedup := "-", "-", "-"
	if r.Mode != relayModeApply {
		fwdNs = fmt.Sprintf("%.0f", r.ForwardCPUNsPerRefresh)
		fwdAllocs = fmt.Sprintf("%.3f", r.ForwardAllocsPerRefresh)
	}
	if r.SpeedupVsClassic > 0 {
		speedup = fmt.Sprintf("%.1fx", r.SpeedupVsClassic)
	}
	fmt.Printf("%-14s %9d %15.0f %13s %13.2f %12s %9s\n",
		r.Scenario, r.Children, r.RelayCPUNsPerRefresh, fwdNs, r.AllocsPerRefresh, fwdAllocs, speedup)
}

// measureRelayCost runs one relay-hop scenario over pre-encoded framed
// batches. In the node modes each batch waits for full delivery before the
// next, so the classic path's flush-tick coalescing cannot shrink its
// workload and both forward modes deliver exactly batches x batchSize
// refreshes; the apply baseline has no deliveries to pace against and waits
// on the applied counter instead. The clock is process CPU time, so the
// waits cost nothing; heap cost is the Mallocs delta across the window, with
// GC disabled inside it so collector work does not smear across modes.
// Frames are pre-built before the window starts — encoding them is the
// upstream tier's cost, not this hop's.
func measureRelayCost(mode string, children, batchSize, batches int) relayCostResult {
	sinks := make([]*deliverySink, children)
	dests := make([]runtime.Destination, children)
	for i := range sinks {
		id := fmt.Sprintf("child-%d", i)
		sinks[i] = newDeliverySink(id)
		dests[i] = runtime.Destination{CacheID: id, Conn: sinks[i]}
	}
	feed := newRelayFeed(4)
	cacheCfg := runtime.CacheConfig{Bandwidth: 5e7, Tick: 100 * time.Millisecond, Shards: 1}

	var node *runtime.Node
	var cache *runtime.Cache
	if mode == relayModeApply {
		cacheCfg.ID = "relay"
		cache = runtime.NewCache(cacheCfg, feed)
	} else {
		var err error
		node, err = runtime.NewNode(runtime.NodeConfig{
			ID:            "relay",
			Intake:        cacheCfg,
			PeerBandwidth: 5e7,
			Tick:          time.Millisecond,
			Metric:        metric.ValueDeviation,
			// Pin the threshold low so every refresh in the workload is
			// over-threshold: the scenario measures delivery cost, not
			// suppression.
			Params:        core.Params{Alpha: 1, Omega: 1, InitialThreshold: 1e-6, DisableBeta: true},
			Group:         runtime.GroupConfig{Enabled: true},
			SpliceForward: mode == relayModeSplice,
		}, feed, dests)
		if err != nil {
			panic(err)
		}
	}

	// Pre-build every inbound batch: batchSize objects whose values step by
	// 1 per round (always over the pinned threshold) on an advancing origin
	// axis, shaped like a hop from an upstream relay ("up", one Via entry).
	const warmup = 8
	now := time.Now().UnixNano()
	names := make([]string, batchSize)
	for i := range names {
		names[i] = fmt.Sprintf("up/obj-%03d", i)
	}
	ins := make([]transport.InboundBatch, warmup+batches)
	for b := range ins {
		rs := make([]wire.Refresh, batchSize)
		for i := range rs {
			rs[i] = wire.Refresh{
				SourceID:      "up",
				ObjectID:      names[i],
				CacheID:       "relay",
				Origin:        "origin",
				Hops:          1,
				Via:           []string{"up"},
				OriginEpoch:   7,
				OriginVersion: uint64(b + 1),
				Value:         float64(b),
				Version:       uint64(b + 1),
				Epoch:         7,
				Threshold:     1e-6,
				SentUnix:      now,
			}
		}
		ins[b] = transport.InboundBatch{
			RefreshBatch: wire.RefreshBatch{Refreshes: rs, SentUnix: now},
			Frame:        codec.NewBatchFrame(rs, now),
		}
	}

	// Lockstep pacing blocks on the sinks' progress pulses rather than
	// sleep-polling: timer sleeps cost process CPU in wakeups, and the mode
	// that waits longer per batch (classic, a flush tick) would be billed
	// more of them — a bias the CPU differential cannot afford. A watchdog
	// turns a genuinely undelivered frame into a panic instead of a hang.
	watchdog := time.AfterFunc(60*time.Second, func() {
		panic(fmt.Sprintf("syncbench: relay-cost %s stalled waiting for delivery", mode))
	})
	defer watchdog.Stop()
	feedOne := func(in transport.InboundBatch, expect int64) {
		feed.batches <- in
		for _, s := range sinks {
			for s.frames.Load() < expect {
				<-s.progress
			}
		}
	}
	// The baseline feeds without delivery pacing; completion is one wait at
	// the end for the cache's applied counter to reach the fed count.
	waitApplied := func(total int) {
		for cache.Stats().Refreshes < total {
			time.Sleep(200 * time.Microsecond)
		}
	}

	run := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			feedOne(ins[i], int64(i+1))
		}
		if cache != nil {
			waitApplied(hi * batchSize)
		}
	}

	run(0, warmup)
	gc := debug.SetGCPercent(-1)
	stdruntime.GC()
	var m0, m1 stdruntime.MemStats
	stdruntime.ReadMemStats(&m0)
	cpu0 := processCPUNs()
	run(warmup, len(ins))
	cpuNs := processCPUNs() - cpu0
	stdruntime.ReadMemStats(&m1)
	debug.SetGCPercent(gc)

	res := relayCostResult{
		Scenario:  "relay-" + mode,
		Mode:      mode,
		Children:  children,
		BatchSize: batchSize,
		Batches:   batches,
	}
	if node != nil {
		st := node.Stats()
		res.Forwarded = st.Forwarded
		res.SplicedBatches = st.SplicedBatches
		res.SplicedRefreshes = st.SplicedRefreshes
		res.SpliceFallbacks = st.SpliceFallbacks
		node.Close()
	} else {
		cache.Close()
	}
	feed.Close()

	refreshes := batches * batchSize
	for _, s := range sinks {
		res.DeliveredFrames += s.frames.Load()
		res.EgressBytes += s.bytes.Load()
	}
	if refreshes > 0 {
		res.RelayCPUNsPerRefresh = float64(cpuNs) / float64(refreshes)
		res.AllocsPerRefresh = float64(m1.Mallocs-m0.Mallocs) / float64(refreshes)
		res.AllocBytesPerRefresh = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(refreshes)
	}
	if mode == relayModeSplice && res.SpliceFallbacks > 0 {
		fmt.Printf("# relay-splice: %d batches fell back to the classic path\n", res.SpliceFallbacks)
	}
	return res
}
