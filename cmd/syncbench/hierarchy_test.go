package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestHierarchyBenchSchema is the CI smoke for -hierarchy: a short run must
// measure both topologies on both transports plus the relay-hop delivery-cost
// scenario, and emit a BENCH_hierarchy.json whose rows parse with exactly the
// documented schemas (docs/operations.md) — the file mixes hierarchyResult
// and relayCostResult rows, discriminated by the scenario prefix. Unknown
// fields in the file mean the docs lag the code, a decode error the reverse.
// It also pins the splice-forwarding PR's headline properties: the splice
// scenario forwards every batch through the splice path (no fallbacks) and
// records a forward-cost comparison against the classic re-encode path.
func TestHierarchyBenchSchema(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	runHierarchyMode(2, 24, 400, 120, 600*time.Millisecond)

	data, err := os.ReadFile(filepath.Join(dir, "BENCH_hierarchy.json"))
	if err != nil {
		t.Fatalf("BENCH_hierarchy.json not written: %v", err)
	}
	var raw []json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatalf("BENCH_hierarchy.json is not a JSON array: %v", err)
	}
	var hier []hierarchyResult
	var relay []relayCostResult
	for i, row := range raw {
		var peek struct {
			Scenario string `json:"scenario"`
		}
		if err := json.Unmarshal(row, &peek); err != nil {
			t.Fatalf("row %d: no scenario discriminator: %v", i, err)
		}
		dec := json.NewDecoder(bytes.NewReader(row))
		dec.DisallowUnknownFields()
		if strings.HasPrefix(peek.Scenario, "relay-") {
			var r relayCostResult
			if err := dec.Decode(&r); err != nil {
				t.Fatalf("row %d (%s) does not match the relay-cost schema: %v", i, peek.Scenario, err)
			}
			relay = append(relay, r)
		} else {
			var r hierarchyResult
			if err := dec.Decode(&r); err != nil {
				t.Fatalf("row %d (%s) does not match the hierarchy schema: %v", i, peek.Scenario, err)
			}
			hier = append(hier, r)
		}
	}

	if len(hier) != 4 {
		t.Fatalf("got %d hierarchy scenarios, want 4 (tree/flat x local/tcp)", len(hier))
	}
	for _, r := range hier {
		if r.Leaves != 2 || r.Objects != 24 || r.TotalBandwidth != 120 {
			t.Errorf("%s: config = %d leaves / %d objects / %.0f msgs/s", r.Scenario, r.Leaves, r.Objects, r.TotalBandwidth)
		}
		if r.DurationS <= 0 || r.Updates == 0 {
			t.Errorf("%s: empty measurement (duration %v, updates %d)", r.Scenario, r.DurationS, r.Updates)
		}
		wantNodes := r.Leaves + 1 // relay or hub + leaves
		if len(r.PerNode) != wantNodes {
			t.Errorf("%s: %d per-node rows, want %d", r.Scenario, len(r.PerNode), wantNodes)
		}
		if r.Topology == "tree" && r.RelayForwarded == 0 {
			t.Errorf("%s: relay forwarded nothing", r.Scenario)
		}
	}

	if len(relay) != 3 {
		t.Fatalf("got %d relay-cost scenarios, want 3 (apply, classic, splice)", len(relay))
	}
	byMode := map[string]relayCostResult{}
	for _, r := range relay {
		byMode[r.Mode] = r
		if r.BatchSize != 64 || r.Batches == 0 {
			t.Errorf("%s: shape = batch %d x %d batches", r.Scenario, r.BatchSize, r.Batches)
		}
		if r.RelayCPUNsPerRefresh <= 0 {
			t.Errorf("%s: no CPU measured", r.Scenario)
		}
	}
	apply, ok := byMode["apply"]
	if !ok {
		t.Fatal("relay-apply scenario missing")
	}
	if apply.Children != 0 || apply.DeliveredFrames != 0 || apply.ForwardCPUNsPerRefresh != 0 {
		t.Errorf("apply baseline has forward traffic (children %d, frames %d, fwd %f)",
			apply.Children, apply.DeliveredFrames, apply.ForwardCPUNsPerRefresh)
	}
	for _, mode := range []string{"classic", "splice"} {
		r, ok := byMode[mode]
		if !ok {
			t.Fatalf("relay-%s scenario missing", mode)
		}
		if r.Children != 2 || r.DeliveredFrames == 0 || r.Forwarded == 0 {
			t.Errorf("%s: no forward traffic measured (children %d, frames %d, forwarded %d)",
				r.Scenario, r.Children, r.DeliveredFrames, r.Forwarded)
		}
	}
	splice := byMode["splice"]
	if splice.SplicedBatches == 0 || splice.SplicedRefreshes == 0 {
		t.Errorf("splice: nothing went through the splice path (batches %d, refreshes %d)",
			splice.SplicedBatches, splice.SplicedRefreshes)
	}
	if splice.SpliceFallbacks != 0 {
		t.Errorf("splice: %d batches fell back to the classic path", splice.SpliceFallbacks)
	}
	if classic := byMode["classic"]; classic.SplicedBatches != 0 {
		t.Errorf("classic: %d batches took the splice path with splicing disabled", classic.SplicedBatches)
	}
	if splice.SpeedupVsClassic <= 0 {
		t.Errorf("splice: no speedup recorded against the classic path")
	}
}
