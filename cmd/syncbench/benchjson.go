package main

import (
	"encoding/json"
	"os"
)

// writeBenchJSON writes a machine-readable benchmark result file
// (BENCH_fanout.json, BENCH_throughput.json) so future changes have a perf
// trajectory to compare against.
func writeBenchJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
