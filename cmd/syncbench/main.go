// Command syncbench regenerates the paper's tables and figures.
//
// Usage:
//
//	syncbench [flags] [experiment ids...]
//
// With no ids, every experiment runs in DESIGN.md order. Available ids:
// e1 e2 (Section 4.3 validations), p1 (Section 6.1 parameter sweep),
// f4 f5 f6 (Figures 4–6), a1 a2 a3 a4 (ablations), e7 e8 e9 (Sections 7–9
// extensions), e10 e11 e12 e13 (Section 10.1 future-work extensions).
//
// Flags:
//
//	-full      run the paper-scale grids (minutes–hours) instead of the
//	           reduced quick grids (seconds each)
//	-seed N    base random seed (default 1)
//	-csv DIR   also write each table as CSV files under DIR
//	-list      list experiment ids and exit
//
//	-cpuprofile FILE  write a pprof CPU profile of the selected mode
//	-memprofile FILE  write a pprof heap profile at exit
//
// The profiling flags work in every mode (experiments and benchmarks alike);
// inspect the output with `go tool pprof`.
//
// With -throughput the experiments are skipped and syncbench instead
// benchmarks the live runtime (internal/runtime) end to end: N producer
// goroutines stream refreshes into a cache node, once with the single-lock
// message-at-a-time baseline and once with the sharded store and batched
// framing, printing the apply throughput and speedup. The -sources,
// -objects, -shards, -batch, -flush and -duration flags tune that mode.
// Results are also written to BENCH_throughput.json.
//
// With -fanout syncbench measures the fan-out topology instead: one live
// source driving N caches (N = 1..-caches) over both the in-process and
// the loopback-TCP transport, reporting aggregate refreshes/s and
// per-cache divergence/threshold/feedback as N grows. The -caches,
// -objects, -rate, -bandwidth and -duration flags tune that mode. Results
// are also written to BENCH_fanout.json.
//
// With -hierarchy syncbench compares the cache→cache hierarchy against
// flat fan-out: a 3-tier tree (source sends at B/2; the relay's intake and
// child sends share one adaptively rebalanced budget B) versus the flat
// 1 → leaves+1 topology spending B on direct sessions, on both transports,
// reporting per-node applied refreshes and final mean divergence. Results
// are also written to BENCH_hierarchy.json.
//
// With -topology syncbench compares the peer-face topology shapes over the
// same N cache nodes at the same total send budget: the direct tree (the
// origin spends the whole budget on per-node sessions) versus a ring and a
// full mesh where the origin holds half the budget toward one node and the
// nodes' peer faces share the other half, serving each other laterally. The
// -nodes, -objects, -rate, -bandwidth and -duration flags tune that mode.
// Results are also written to BENCH_topology.json.
//
// With -dynamic syncbench compares static equal shares against live share
// re-allocation (SourceConfig.Rebalance) on two workloads: skewed
// destination capacities (one cache absorbs a tenth of the others') and
// destination churn (a cache leaves mid-run, a fresh one joins and is
// re-synchronized). The -caches, -objects, -rate, -bandwidth and -duration
// flags tune it. Results are also written to BENCH_dynamic.json.
//
// With -policy syncbench runs the live analogue of Figure 6 (§6.3): one
// source and one cache synchronize the same workload under each sync
// policy — source-cooperative push, ideal cache-based polling, CGM1, CGM2
// and the hybrid split (push the hot head, poll the cold tail) — at equal
// message budget over both transports, reporting installed refreshes, total
// messages and final mean divergence per policy. -zipf adds skewed-workload
// sweep points (comma-separated Zipf exponents), where the hybrid policy's
// migration controller concentrates the push budget on the hot objects. The
// -objects, -rate, -bandwidth, -duration, -resolve-every and -zipf flags
// tune it. Results are also written to BENCH_policy.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	stdruntime "runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"bestsync/internal/experiments"
)

// startProfiles starts the optional pprof outputs (-cpuprofile/-memprofile).
// The returned stop function ends the CPU profile and snapshots the heap; it
// must run after the selected mode finishes.
func startProfiles(cpu, mem string) (func(), error) {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "syncbench: -memprofile: %v\n", err)
				return
			}
			stdruntime.GC() // up-to-date allocation stats in the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "syncbench: -memprofile: %v\n", err)
			}
			f.Close()
		}
	}, nil
}

// parseScale parses the -scale flag: comma-separated positive destination
// counts for the delivery-cost scenarios. An empty string means skip them.
func parseScale(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var scale []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("%q is not a positive destination count", part)
		}
		scale = append(scale, n)
	}
	return scale, nil
}

// parseZipf parses the -zipf flag: comma-separated Zipf exponents, each
// strictly greater than 1 (rand.NewZipf's domain). Empty means no skewed
// sweep points.
func parseZipf(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 1 {
			return nil, fmt.Errorf("%q is not a Zipf exponent > 1", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	full := flag.Bool("full", false, "run the paper-scale grids")
	seed := flag.Int64("seed", 1, "base random seed")
	csvDir := flag.String("csv", "", "directory to write CSV tables into")
	list := flag.Bool("list", false, "list experiment ids and exit")
	throughput := flag.Bool("throughput", false, "benchmark live-runtime refresh-apply throughput instead of experiments")
	tpSources := flag.Int("sources", 8, "throughput mode: concurrent producer sources")
	tpObjects := flag.Int("objects", 128, "throughput mode: objects per source")
	tpShards := flag.Int("shards", 0, "throughput mode: shard count for the tuned config (0 = GOMAXPROCS)")
	tpBatch := flag.Int("batch", 64, "throughput mode: wire batch size for the tuned config")
	tpFlush := flag.Duration("flush", 2*time.Millisecond, "throughput mode: partial-batch flush interval")
	tpDur := flag.Duration("duration", 3*time.Second, "throughput/fanout mode: measurement window per config")
	fanout := flag.Bool("fanout", false, "benchmark the 1-source -> N-cache fan-out topology instead of experiments")
	fanCaches := flag.Int("caches", 4, "fanout mode: maximum cache count in the sweep")
	fanScale := flag.String("scale", "1000,10000", "fanout mode: comma-separated destination counts for the delivery-cost scenarios (group vs per-session; empty = skip)")
	fanDestBW := flag.Float64("dest-bandwidth", 50, "fanout mode: per-destination send budget (messages/second) in the delivery-cost scenarios")
	fanRate := flag.Float64("rate", 500, "fanout/hierarchy mode: source update rate (updates/second)")
	fanBW := flag.Float64("bandwidth", 200, "fanout/hierarchy mode: total send budget (messages/second)")
	hierarchy := flag.Bool("hierarchy", false, "benchmark the source -> relay -> N leaves tree vs flat 1 -> N+1 fan-out instead of experiments")
	hierLeaves := flag.Int("leaves", 3, "hierarchy/relaycost mode: leaf cache count below the relay")
	relaycost := flag.Bool("relaycost", false, "run only the relay-hop delivery-cost scenario (splice vs classic forwarding; also part of -hierarchy)")
	relayBatches := flag.Int("relay-batches", 2048, "relaycost mode: measured batches per scenario")
	topology := flag.Bool("topology", false, "benchmark the peer-face topology shapes (direct tree vs ring vs mesh at equal total budget) instead of experiments")
	topoNodes := flag.Int("nodes", 6, "topology mode: cache node count per shape")
	dynamic := flag.Bool("dynamic", false, "benchmark static vs adaptive share allocation under skewed and churning destinations instead of experiments")
	policy := flag.Bool("policy", false, "benchmark the sync policies (push vs hybrid vs ideal/CGM1/CGM2 cache-driven polling) at equal message budget instead of experiments")
	resolveEvery := flag.Duration("resolve-every", 500*time.Millisecond, "policy mode: poll re-estimation/re-allocation epoch")
	zipfFlag := flag.String("zipf", "", "policy mode: comma-separated Zipf exponents (each > 1) adding skewed-workload sweep points (empty = uniform workload only)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the selected mode to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "syncbench: -cpuprofile: %v\n", err)
		os.Exit(2)
	}
	defer stopProfiles()

	if *policy {
		zipf, err := parseZipf(*zipfFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "syncbench: -zipf: %v\n", err)
			os.Exit(2)
		}
		runPolicyMode(*tpObjects, *fanRate, *fanBW, *tpDur, *resolveEvery, zipf)
		return
	}
	if *topology {
		runTopologyMode(*topoNodes, *tpObjects, *fanRate, *fanBW, *tpDur)
		return
	}
	if *dynamic {
		runDynamicMode(*fanCaches, *tpObjects, *fanRate, *fanBW, *tpDur)
		return
	}
	if *relaycost {
		runRelayCost(*hierLeaves, *tpBatch, *relayBatches)
		return
	}
	if *hierarchy {
		runHierarchyMode(*hierLeaves, *tpObjects, *fanRate, *fanBW, *tpDur)
		return
	}
	if *fanout {
		scale, err := parseScale(*fanScale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "syncbench: -scale: %v\n", err)
			os.Exit(2)
		}
		runFanoutMode(*fanCaches, *tpObjects, *fanRate, *fanBW, *tpDur, scale, *fanDestBW)
		return
	}
	if *throughput {
		shards := *tpShards
		if shards <= 0 {
			shards = stdruntime.GOMAXPROCS(0)
		}
		runThroughputMode(*tpSources, *tpObjects, shards, *tpBatch, *tpFlush, *tpDur)
		return
	}

	reg := experiments.Registry()
	if *list {
		for _, id := range experiments.Order() {
			fmt.Println(id)
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.Order()
	}
	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}
	for _, id := range ids {
		runner, ok := reg[strings.ToLower(id)]
		if !ok {
			fmt.Fprintf(os.Stderr, "syncbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		out := runner(scale, *seed)
		fmt.Printf("# %s (%s scale, %.1fs)\n\n", id, scale, time.Since(start).Seconds())
		if _, err := out.WriteTo(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "syncbench: %v\n", err)
			os.Exit(1)
		}
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, id, &out); err != nil {
				fmt.Fprintf(os.Stderr, "syncbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func writeCSVs(dir, id string, out *experiments.Output) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i := range out.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_table%d.csv", id, i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := out.Tables[i].CSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
