package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestThroughputBenchSchema is the CI smoke for -throughput: a short run must
// measure the apply-path pair plus all six wire-framing scenarios and emit a
// BENCH_throughput.json that parses with exactly the documented schema
// (docs/operations.md) — unknown fields in the file mean the docs lag the
// code, a decode error means the reverse.
func TestThroughputBenchSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement windows are too slow for -short")
	}
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	runThroughputMode(2, 16, 0, 64, 2*time.Millisecond, 300*time.Millisecond)

	data, err := os.ReadFile(filepath.Join(dir, "BENCH_throughput.json"))
	if err != nil {
		t.Fatalf("BENCH_throughput.json not written: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var records []tpRecord
	if err := dec.Decode(&records); err != nil {
		t.Fatalf("BENCH_throughput.json does not match the documented schema: %v", err)
	}
	want := map[string]bool{
		"throughput-baseline": true, "throughput-tuned": true,
		"codec-gob": true, "codec-binary": true,
		"frame-gob": true, "frame-binary": true,
		"fanout-gob": true, "fanout-binary": true,
	}
	for _, r := range records {
		if !want[r.Scenario] {
			t.Errorf("unexpected or duplicate scenario %q", r.Scenario)
			continue
		}
		delete(want, r.Scenario)
		if r.Applied == 0 || r.RefreshesPerS <= 0 {
			t.Errorf("%s: empty measurement (applied %d, rate %.0f)", r.Scenario, r.Applied, r.RefreshesPerS)
		}
		if r.Speedup <= 0 {
			t.Errorf("%s: speedup %v", r.Scenario, r.Speedup)
		}
		framing := !strings.HasPrefix(r.Scenario, "throughput-")
		if framing {
			if r.NsPerRefresh <= 0 {
				t.Errorf("%s: framing scenario missing ns_per_refresh", r.Scenario)
			}
			if r.Codec != "binary" && r.Codec != "gob" {
				t.Errorf("%s: codec %q", r.Scenario, r.Codec)
			}
			if r.Batch != 64 {
				t.Errorf("%s: batch %d, want 64", r.Scenario, r.Batch)
			}
		} else if r.Codec != "" || r.Fanout != 0 || r.NsPerRefresh != 0 {
			t.Errorf("%s: apply-path scenario carries codec fields (%q/%d/%v)",
				r.Scenario, r.Codec, r.Fanout, r.NsPerRefresh)
		}
	}
	for s := range want {
		t.Errorf("scenario %q missing from BENCH_throughput.json", s)
	}
}
