package main

import (
	"fmt"
	"sync"
	"time"

	"bestsync/internal/runtime"
	"bestsync/internal/transport"
	"bestsync/internal/wire"
)

// tpConfig describes one throughput measurement: n producer goroutines
// stream refreshes through a Local transport into a live cache with the
// given shard count, optionally coalescing through a transport.Batcher.
type tpConfig struct {
	label    string
	sources  int
	objects  int // per source
	shards   int
	batch    int
	flush    time.Duration
	duration time.Duration
}

// tpResult is one measured configuration.
type tpResult struct {
	cfg     tpConfig
	applied int
	rate    float64 // applied refreshes per second
}

// tpRecord is the machine-readable form of one throughput measurement
// (BENCH_throughput.json).
type tpRecord struct {
	Scenario      string  `json:"scenario"` // throughput-baseline | throughput-tuned
	Sources       int     `json:"sources"`
	Objects       int     `json:"objects"`
	Shards        int     `json:"shards"`
	Batch         int     `json:"batch"`
	DurationS     float64 `json:"duration_s"`
	Applied       int     `json:"applied"`
	RefreshesPerS float64 `json:"refreshes_per_s"`
	Speedup       float64 `json:"speedup"`
}

// runThroughputMode compares the single-lock, message-at-a-time baseline
// (shards=1, batch=1) against the sharded+batched runtime, prints a table
// with the speedup, and writes BENCH_throughput.json.
func runThroughputMode(sources, objects, shards, batch int, flush, duration time.Duration) {
	base := tpConfig{
		label: "baseline (1 shard, no batching)", sources: sources,
		objects: objects, shards: 1, batch: 1, flush: flush, duration: duration,
	}
	tuned := tpConfig{
		label:   fmt.Sprintf("sharded+batched (shards=%d, batch=%d)", shards, batch),
		sources: sources, objects: objects, shards: shards, batch: batch,
		flush: flush, duration: duration,
	}
	fmt.Printf("# live-runtime refresh-apply throughput: %d sources x %d objects, %s per config\n\n",
		sources, objects, duration)
	results := []tpResult{measureThroughput(base), measureThroughput(tuned)}
	fmt.Printf("%-40s %12s %14s %9s\n", "config", "applied", "msgs/s", "speedup")
	records := make([]tpRecord, 0, len(results))
	scenarios := []string{"throughput-baseline", "throughput-tuned"}
	for i, r := range results {
		speedup := r.rate / results[0].rate
		fmt.Printf("%-40s %12d %14.0f %8.2fx\n",
			r.cfg.label, r.applied, r.rate, speedup)
		records = append(records, tpRecord{
			Scenario:      scenarios[i],
			Sources:       r.cfg.sources,
			Objects:       r.cfg.objects,
			Shards:        r.cfg.shards,
			Batch:         r.cfg.batch,
			DurationS:     r.cfg.duration.Seconds(),
			Applied:       r.applied,
			RefreshesPerS: r.rate,
			Speedup:       speedup,
		})
	}
	if err := writeBenchJSON("BENCH_throughput.json", records); err != nil {
		fmt.Printf("syncbench: writing BENCH_throughput.json: %v\n", err)
		return
	}
	fmt.Println("\nwrote BENCH_throughput.json")
}

// measureThroughput runs one configuration: producers push as fast as the
// back-pressure allows for cfg.duration, and the applied-refresh count at
// the end of the window is the throughput.
func measureThroughput(cfg tpConfig) tpResult {
	net := transport.NewLocal(1024)
	cache := runtime.NewCache(runtime.CacheConfig{
		Bandwidth: 1e9, // unconstrained: measure the apply path, not the token bucket
		Tick:      time.Millisecond,
		Shards:    cfg.shards,
	}, net)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < cfg.sources; s++ {
		id := fmt.Sprintf("src-%d", s)
		conn, err := net.Dial(id)
		if err != nil {
			panic(err)
		}
		if cfg.batch > 1 {
			conn = transport.NewBatcher(conn, transport.BatcherConfig{
				MaxBatch:   cfg.batch,
				FlushEvery: cfg.flush,
			})
		}
		objIDs := make([]string, cfg.objects)
		for i := range objIDs {
			objIDs[i] = fmt.Sprintf("%s/obj-%d", id, i)
		}
		wg.Add(1)
		go func(id string, conn transport.SourceConn) {
			defer wg.Done()
			defer conn.Close()
			var version uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				version++
				r := wire.Refresh{
					SourceID: id,
					ObjectID: objIDs[int(version)%len(objIDs)],
					Version:  version,
					Value:    float64(version),
				}
				if err := conn.SendRefresh(r); err != nil {
					return
				}
			}
		}(id, conn)
	}

	start := time.Now()
	time.Sleep(cfg.duration)
	applied := cache.Stats().Refreshes
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	cache.Close()
	net.Close()
	return tpResult{cfg: cfg, applied: applied, rate: float64(applied) / elapsed.Seconds()}
}
