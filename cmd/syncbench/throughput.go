package main

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bestsync/internal/runtime"
	"bestsync/internal/transport"
	"bestsync/internal/wire"
	"bestsync/internal/wire/codec"
)

// tpConfig describes one throughput measurement: n producer goroutines
// stream refreshes through a Local transport into a live cache with the
// given shard count, optionally coalescing through a transport.Batcher.
type tpConfig struct {
	label    string
	sources  int
	objects  int // per source
	shards   int
	batch    int
	flush    time.Duration
	duration time.Duration
}

// tpResult is one measured configuration.
type tpResult struct {
	cfg     tpConfig
	applied int
	rate    float64 // applied refreshes per second
}

// tpRecord is the machine-readable form of one throughput measurement
// (BENCH_throughput.json). The apply-path scenarios (throughput-*) leave the
// codec fields empty; the wire-framing scenarios (frame-*, fanout-*) leave
// the apply-path fields (objects, shards) zero.
type tpRecord struct {
	Scenario      string  `json:"scenario"` // throughput-* | frame-* | fanout-*
	Sources       int     `json:"sources"`
	Objects       int     `json:"objects"`
	Shards        int     `json:"shards"`
	Batch         int     `json:"batch"`
	DurationS     float64 `json:"duration_s"`
	Applied       int     `json:"applied"`
	RefreshesPerS float64 `json:"refreshes_per_s"`
	Speedup       float64 `json:"speedup"`
	Codec         string  `json:"codec,omitempty"`  // binary | gob
	Fanout        int     `json:"fanout,omitempty"` // loopback-TCP destinations
	NsPerRefresh  float64 `json:"ns_per_refresh,omitempty"`
}

// runThroughputMode compares the single-lock, message-at-a-time baseline
// (shards=1, batch=1) against the sharded+batched runtime, prints a table
// with the speedup, and writes BENCH_throughput.json.
func runThroughputMode(sources, objects, shards, batch int, flush, duration time.Duration) {
	base := tpConfig{
		label: "baseline (1 shard, no batching)", sources: sources,
		objects: objects, shards: 1, batch: 1, flush: flush, duration: duration,
	}
	tuned := tpConfig{
		label:   fmt.Sprintf("sharded+batched (shards=%d, batch=%d)", shards, batch),
		sources: sources, objects: objects, shards: shards, batch: batch,
		flush: flush, duration: duration,
	}
	fmt.Printf("# live-runtime refresh-apply throughput: %d sources x %d objects, %s per config\n\n",
		sources, objects, duration)
	results := []tpResult{measureThroughput(base), measureThroughput(tuned)}
	fmt.Printf("%-40s %12s %14s %9s\n", "config", "applied", "msgs/s", "speedup")
	records := make([]tpRecord, 0, len(results))
	scenarios := []string{"throughput-baseline", "throughput-tuned"}
	for i, r := range results {
		speedup := r.rate / results[0].rate
		fmt.Printf("%-40s %12d %14.0f %8.2fx\n",
			r.cfg.label, r.applied, r.rate, speedup)
		records = append(records, tpRecord{
			Scenario:      scenarios[i],
			Sources:       r.cfg.sources,
			Objects:       r.cfg.objects,
			Shards:        r.cfg.shards,
			Batch:         r.cfg.batch,
			DurationS:     r.cfg.duration.Seconds(),
			Applied:       r.applied,
			RefreshesPerS: r.rate,
			Speedup:       speedup,
		})
	}
	records = append(records, runFramingScenarios(batch, duration)...)
	if err := writeBenchJSON("BENCH_throughput.json", records); err != nil {
		fmt.Printf("syncbench: writing BENCH_throughput.json: %v\n", err)
		return
	}
	fmt.Println("\nwrote BENCH_throughput.json")
}

// runFramingScenarios measures the TCP wire-framing cost per codec: one
// source streaming batches over loopback TCP, first to a single destination
// (frame-*), then fanned out to several (fanout-*). The fan-out pair is the
// codec's real deployment shape — a source re-exporting each batch to every
// connected cache — where the binary path encodes once per batch
// (codec.Frame + FrameSender) while gob inherently re-encodes per stream.
func runFramingScenarios(batch int, duration time.Duration) []tpRecord {
	const framingFanout = 4
	fmt.Printf("\n# wire framing: batch=%d, %s per config\n\n", batch, duration)
	fmt.Printf("%-40s %12s %14s %12s %9s\n",
		"config", "delivered", "refreshes/s", "ns/refresh", "speedup")
	records := make([]tpRecord, 0, 6)
	// fanout 0 is the pure codec cost (encode+decode, no sockets): the
	// direct binary-vs-gob framing comparison. The TCP rows add the
	// loopback socket, channel and scheduler costs both codecs share.
	for _, fanout := range []int{0, 1, framingFanout} {
		prefix := "frame"
		switch fanout {
		case 0:
			prefix = "codec"
		case framingFanout:
			prefix = "fanout"
		}
		var gobRate float64
		for _, c := range []transport.Codec{transport.CodecGob, transport.CodecBinary} {
			var delivered int
			var rate float64
			if fanout == 0 {
				delivered, rate = measureCodec(c, batch, duration)
			} else {
				delivered, rate = measureFraming(c, fanout, batch, duration)
			}
			speedup := 1.0
			if c == transport.CodecGob {
				gobRate = rate
			} else if gobRate > 0 {
				speedup = rate / gobRate
			}
			nsPer := 0.0
			if rate > 0 {
				nsPer = 1e9 / rate
			}
			label := fmt.Sprintf("%s codec, %d destination(s)", c, fanout)
			if fanout == 0 {
				label = fmt.Sprintf("%s codec, encode+decode only", c)
			}
			fmt.Printf("%-40s %12d %14.0f %12.1f %8.2fx\n",
				label, delivered, rate, nsPer, speedup)
			records = append(records, tpRecord{
				Scenario:      fmt.Sprintf("%s-%s", prefix, c),
				Sources:       1,
				Batch:         batch,
				DurationS:     duration.Seconds(),
				Applied:       delivered,
				RefreshesPerS: rate,
				Speedup:       speedup,
				Codec:         c.String(),
				Fanout:        fanout,
				NsPerRefresh:  nsPer,
			})
		}
	}
	return records
}

// measureCodec measures the framing cost alone — encoding a batch-of-batch
// refreshes envelope and decoding it back, single-threaded, no sockets — for
// roughly duration, returning refreshes processed and the rate. This is the
// apples-to-apples codec-vs-gob number: everything else in the TCP scenarios
// (syscalls, channels, goroutine switches) is shared by both codecs.
func measureCodec(pref transport.Codec, batch int, duration time.Duration) (int, float64) {
	rs := make([]wire.Refresh, batch)
	for i := range rs {
		rs[i] = wire.Refresh{
			SourceID: "src-0",
			ObjectID: fmt.Sprintf("src-0/object-%04d", i), // realistic distinct ids
			Version:  uint64(i + 1),
			Value:    float64(i),
		}
	}
	env := wire.CacheBound{Batch: &wire.RefreshBatch{Refreshes: rs}}
	deadline := time.Now().Add(duration)
	start := time.Now()
	processed := 0
	if pref == transport.CodecBinary {
		var enc codec.Encoder
		var buf []byte
		// The replay reader hands the decoder the bytes of the most recent
		// encode; re-encoding produces identical bytes, so wrap-around in
		// the decoder's read buffer is harmless.
		buf = enc.AppendBatch(buf[:0], *env.Batch)
		dec := codec.NewDecoder(&replayReader{data: buf})
		for time.Now().Before(deadline) {
			for k := 0; k < 64; k++ {
				buf = enc.AppendBatch(buf[:0], *env.Batch)
				if _, err := dec.ReadCacheBound(); err != nil {
					panic(err)
				}
				processed += batch
			}
		}
	} else {
		// encoding/gob streams through a shared buffer: the encoder appends
		// one envelope, the decoder consumes it, single-threaded.
		var pipe bytes.Buffer
		enc := gob.NewEncoder(&pipe)
		dec := gob.NewDecoder(&pipe)
		for time.Now().Before(deadline) {
			for k := 0; k < 64; k++ {
				if err := enc.Encode(env); err != nil {
					panic(err)
				}
				var got wire.CacheBound
				if err := dec.Decode(&got); err != nil {
					panic(err)
				}
				processed += batch
			}
		}
	}
	elapsed := time.Since(start)
	return processed, float64(processed) / elapsed.Seconds()
}

// replayReader serves the same byte slice forever (the caller refreshes its
// contents between reads).
type replayReader struct {
	data []byte
	off  int
}

func (r *replayReader) Read(p []byte) (int, error) {
	if r.off == len(r.data) {
		r.off = 0
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// measureFraming streams batches from one source to fanout loopback-TCP
// servers for roughly duration, returning total refreshes delivered across
// all destinations and the delivery rate. Delivery is counted at the
// receiving end so the number reflects decoded, not merely buffered, frames.
func measureFraming(pref transport.Codec, fanout, batch int, duration time.Duration) (int, float64) {
	var delivered atomic.Int64
	var readers sync.WaitGroup
	done := make(chan struct{}) // Close on a CacheEndpoint does not close Batches()
	servers := make([]transport.CacheEndpoint, 0, fanout)
	conns := make([]transport.SourceConn, 0, fanout)
	for i := 0; i < fanout; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		srv := transport.Serve(ln, 256)
		servers = append(servers, srv)
		readers.Add(1)
		go func(srv transport.CacheEndpoint) {
			defer readers.Done()
			for {
				select {
				case b := <-srv.Batches():
					delivered.Add(int64(len(b.Refreshes)))
				case <-done:
					return
				}
			}
		}(srv)
		conn, err := transport.DialCodec(ln.Addr().String(), "src-0", pref)
		if err != nil {
			panic(err)
		}
		conns = append(conns, conn)
	}

	// The binary fan-out path encodes each batch exactly once and hands
	// every session the same refcounted frame.
	frames := pref == transport.CodecBinary
	for _, c := range conns {
		fs, ok := c.(transport.FrameSender)
		frames = frames && ok && fs.FramesEnabled()
	}

	rs := make([]wire.Refresh, batch)
	for i := range rs {
		rs[i] = wire.Refresh{SourceID: "src-0", ObjectID: "src-0/obj"}
	}
	deadline := time.Now().Add(duration)
	start := time.Now()
	var version uint64
	for time.Now().Before(deadline) {
		// A handful of batches between clock checks keeps the timer off
		// the hot path; only the fields that change are rewritten.
		for k := 0; k < 16; k++ {
			for i := range rs {
				version++
				rs[i].Version = version
				rs[i].Value = float64(version)
			}
			if frames {
				f := codec.NewBatchFrame(rs, time.Now().UnixNano())
				for _, c := range conns {
					if err := c.(transport.FrameSender).SendFrame(f); err != nil {
						panic(err)
					}
				}
				f.Release()
			} else {
				for _, c := range conns {
					if err := c.SendBatch(rs); err != nil {
						panic(err)
					}
				}
			}
		}
	}
	// Drain: closing the connections flushes what the servers have buffered;
	// closing the servers ends the reader goroutines.
	for _, c := range conns {
		c.Close()
	}
	time.Sleep(50 * time.Millisecond)
	elapsed := time.Since(start)
	close(done)
	readers.Wait()
	for _, s := range servers {
		s.Close()
	}
	n := int(delivered.Load())
	return n, float64(n) / elapsed.Seconds()
}

// measureThroughput runs one configuration: producers push as fast as the
// back-pressure allows for cfg.duration, and the applied-refresh count at
// the end of the window is the throughput.
func measureThroughput(cfg tpConfig) tpResult {
	net := transport.NewLocal(1024)
	cache := runtime.NewCache(runtime.CacheConfig{
		Bandwidth: 1e9, // unconstrained: measure the apply path, not the token bucket
		Tick:      time.Millisecond,
		Shards:    cfg.shards,
	}, net)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < cfg.sources; s++ {
		id := fmt.Sprintf("src-%d", s)
		conn, err := net.Dial(id)
		if err != nil {
			panic(err)
		}
		if cfg.batch > 1 {
			conn = transport.NewBatcher(conn, transport.BatcherConfig{
				MaxBatch:   cfg.batch,
				FlushEvery: cfg.flush,
			})
		}
		objIDs := make([]string, cfg.objects)
		for i := range objIDs {
			objIDs[i] = fmt.Sprintf("%s/obj-%d", id, i)
		}
		wg.Add(1)
		go func(id string, conn transport.SourceConn) {
			defer wg.Done()
			defer conn.Close()
			var version uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				version++
				r := wire.Refresh{
					SourceID: id,
					ObjectID: objIDs[int(version)%len(objIDs)],
					Version:  version,
					Value:    float64(version),
				}
				if err := conn.SendRefresh(r); err != nil {
					return
				}
			}
		}(id, conn)
	}

	start := time.Now()
	time.Sleep(cfg.duration)
	applied := cache.Stats().Refreshes
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	cache.Close()
	net.Close()
	return tpResult{cfg: cfg, applied: applied, rate: float64(applied) / elapsed.Seconds()}
}
