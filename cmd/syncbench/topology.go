package main

import (
	"fmt"
	"time"

	"bestsync/internal/metric"
	"bestsync/internal/runtime"
	"bestsync/internal/transport"
)

// topologyNodeResult is one node's slice of a topology measurement.
type topologyNodeResult struct {
	NodeID         string  `json:"node_id"`
	Applied        int     `json:"applied"`
	PeerServed     int     `json:"peer_served"`
	MeanDivergence float64 `json:"mean_divergence"`
}

// topologyResult is one measured topology shape at the shared budget:
// the direct tree (origin spends the whole budget B on per-node sessions),
// the ring (origin holds B/2 toward node 0; every node's peer face gets an
// equal slice of the remaining B/2 and pushes to its successor) or the full
// mesh (same split, peer faces fan to every other node).
type topologyResult struct {
	Scenario            string               `json:"scenario"` // tree | ring | mesh
	Nodes               int                  `json:"nodes"`
	Objects             int                  `json:"objects"`
	DurationS           float64              `json:"duration_s"`
	TotalBandwidth      float64              `json:"total_bandwidth_msgs_per_s"`
	OriginBandwidth     float64              `json:"origin_bandwidth_msgs_per_s"`
	Updates             int                  `json:"updates"`
	OriginEgress        int                  `json:"origin_egress"`        // refreshes sent by the origin source
	PeerServed          int                  `json:"peer_served"`          // applies that reached a node laterally
	Forwarded           int                  `json:"forwarded"`            // refreshes re-exported between nodes
	Looped              int                  `json:"looped"`               // cycled copies rejected at intake
	HopLimited          int                  `json:"hop_limited"`          // re-exports dropped at the hop ceiling
	ThresholdSuppressed int                  `json:"threshold_suppressed"` // peer fan-outs deferred within threshold
	TotalApplied        int                  `json:"total_applied"`
	MeanDivergence      float64              `json:"mean_divergence"`
	MaxDivergence       float64              `json:"max_divergence"`
	PerNode             []topologyNodeResult `json:"per_node"`
}

// runTopologyMode compares the tree, ring and mesh topologies over the same
// N cache nodes at the same total send budget B: the tree spends all of B on
// direct origin→node sessions (every refresh is origin egress), while ring
// and mesh give the origin only B/2 toward node 0 and let the nodes' peer
// faces — each holding (B/2)/N — push applied values laterally, so most
// nodes are served by a neighbor instead of the origin. Results go to
// stdout and BENCH_topology.json. (The deep tree with a shared relay budget
// is covered by -hierarchy; here the tree is the depth-1 baseline the
// cooperative shapes are judged against.)
func runTopologyMode(nodes, objects int, rate, bandwidth float64, duration time.Duration) {
	fmt.Printf("# topology shapes: tree vs ring vs mesh over %d nodes, %d objects, %.0f updates/s, %.0f msgs/s total budget, %s per shape\n\n",
		nodes, objects, rate, bandwidth, duration)
	fmt.Printf("%-8s %6s %8s %13s %12s %8s %12s %14s\n",
		"scenario", "nodes", "updates", "origin egress", "peer served", "looped", "hop-limited", "mean diverg.")
	var results []topologyResult
	for _, shape := range []string{"tree", "ring", "mesh"} {
		r := measureTopology(shape, nodes, objects, rate, bandwidth, duration)
		results = append(results, r)
		fmt.Printf("%-8s %6d %8d %13d %12d %8d %12d %14.4f\n",
			r.Scenario, r.Nodes, r.Updates, r.OriginEgress, r.PeerServed, r.Looped, r.HopLimited, r.MeanDivergence)
	}
	fmt.Println()
	for _, r := range results {
		fmt.Printf("# %s per-node breakdown:\n", r.Scenario)
		for _, nodeRes := range r.PerNode {
			fmt.Printf("  %-8s applied=%6d peer_served=%6d divergence=%.4f\n",
				nodeRes.NodeID, nodeRes.Applied, nodeRes.PeerServed, nodeRes.MeanDivergence)
		}
	}
	if err := writeBenchJSON("BENCH_topology.json", results); err != nil {
		fmt.Printf("syncbench: writing BENCH_topology.json: %v\n", err)
		return
	}
	fmt.Println("\nwrote BENCH_topology.json")
}

// topologyPeers returns the node indices node i pushes to in the shape: its
// successor on the ring, everyone else in the mesh, nobody in the tree.
func topologyPeers(shape string, i, nodes int) []int {
	switch shape {
	case "ring":
		return []int{(i + 1) % nodes}
	case "mesh":
		out := make([]int, 0, nodes-1)
		for j := 0; j < nodes; j++ {
			if j != i {
				out = append(out, j)
			}
		}
		return out
	default:
		return nil
	}
}

// measureTopology runs one shape over the in-process transport and audits
// final divergence at every node against the canonical values.
func measureTopology(shape string, nodes, objects int, rate, bandwidth float64, duration time.Duration) topologyResult {
	res := topologyResult{
		Scenario:       shape,
		Nodes:          nodes,
		Objects:        objects,
		TotalBandwidth: bandwidth,
	}
	nodeID := func(i int) string { return fmt.Sprintf("n%d", i) }

	// Every node gets its own intake endpoint; lateral peers and the origin
	// both deliver through it. Processing budget mirrors the total network
	// budget so the bottleneck under test is the send path, not the apply
	// path (same convention as the hierarchy benchmark).
	eps := make([]*transport.Local, nodes)
	for i := range eps {
		eps[i] = transport.NewLocal(64)
	}

	var (
		src    *runtime.Source
		meshed []*runtime.Node
		caches []*runtime.Cache
		err    error
	)
	if shape == "tree" {
		// Origin --B--> every node directly: all freshness is origin egress.
		res.OriginBandwidth = bandwidth
		caches = make([]*runtime.Cache, nodes)
		dests := make([]runtime.Destination, nodes)
		for i := range caches {
			caches[i] = runtime.NewCache(runtime.CacheConfig{
				ID: nodeID(i), Bandwidth: bandwidth, Tick: 10 * time.Millisecond,
			}, eps[i])
			conn, derr := eps[i].Dial("origin")
			if derr != nil {
				panic(derr)
			}
			dests[i] = runtime.Destination{CacheID: nodeID(i), Conn: conn}
		}
		src, err = runtime.NewFanoutSource(runtime.SourceConfig{
			ID: "origin", Metric: metric.ValueDeviation,
			Bandwidth: bandwidth, Tick: 10 * time.Millisecond,
		}, dests)
		if err != nil {
			panic(err)
		}
	} else {
		// Origin --B/2--> node 0; nodes share the other B/2 on their peer
		// faces and serve each other laterally. MaxHops is lifted to the
		// node count so the far side of the ring stays reachable; the copy
		// that closes the cycle is rejected at intake (Looped) — that
		// rejection, not luck, is what bounds recirculation.
		res.OriginBandwidth = bandwidth / 2
		perNodePeerBW := (bandwidth / 2) / float64(nodes)
		meshed = make([]*runtime.Node, nodes)
		for i := 0; i < nodes; i++ {
			var peers []runtime.Destination
			for _, j := range topologyPeers(shape, i, nodes) {
				conn, derr := eps[j].Dial(nodeID(i))
				if derr != nil {
					panic(derr)
				}
				peers = append(peers, runtime.Destination{CacheID: nodeID(j), Conn: conn})
			}
			meshed[i], err = runtime.NewNode(runtime.NodeConfig{
				ID:            nodeID(i),
				Intake:        runtime.CacheConfig{Bandwidth: bandwidth, Tick: 10 * time.Millisecond},
				PeerBandwidth: perNodePeerBW,
				Metric:        metric.ValueDeviation,
				Tick:          10 * time.Millisecond,
				MaxHops:       nodes,
			}, eps[i], peers)
			if err != nil {
				panic(err)
			}
		}
		conn, derr := eps[0].Dial("origin")
		if derr != nil {
			panic(derr)
		}
		src, err = runtime.NewFanoutSource(runtime.SourceConfig{
			ID: "origin", Metric: metric.ValueDeviation,
			Bandwidth: bandwidth / 2, Tick: 10 * time.Millisecond,
		}, []runtime.Destination{{CacheID: nodeID(0), Conn: conn}})
		if err != nil {
			panic(err)
		}
	}

	values, elapsed := pacedRandomWalk(src, "origin", objects, rate, duration)
	res.DurationS = elapsed

	st := src.Stats()
	res.Updates = st.Updates
	res.OriginEgress = st.Refreshes
	if shape == "tree" {
		for _, c := range caches {
			cst := c.Stats()
			d := meanAbsDivergence(c, "origin", values)
			res.TotalApplied += cst.Refreshes
			res.PeerServed += cst.PeerServed
			res.MeanDivergence += d
			res.MaxDivergence = max(res.MaxDivergence, d)
			res.PerNode = append(res.PerNode, topologyNodeResult{
				NodeID: c.ID(), Applied: cst.Refreshes,
				PeerServed: cst.PeerServed, MeanDivergence: d,
			})
		}
	} else {
		for _, n := range meshed {
			nst := n.Stats()
			d := meanAbsDivergence(n.Cache(), "origin", values)
			res.TotalApplied += nst.Intake.Refreshes
			res.PeerServed += nst.Intake.PeerServed
			res.Forwarded += nst.Forwarded
			res.Looped += nst.Looped
			res.HopLimited += nst.HopLimited
			res.ThresholdSuppressed += nst.ThresholdSuppressed
			res.MeanDivergence += d
			res.MaxDivergence = max(res.MaxDivergence, d)
			res.PerNode = append(res.PerNode, topologyNodeResult{
				NodeID: n.ID(), Applied: nst.Intake.Refreshes,
				PeerServed: nst.Intake.PeerServed, MeanDivergence: d,
			})
		}
	}
	res.MeanDivergence /= float64(nodes)

	src.Close() // stop the origin flow before tearing down the nodes
	for _, n := range meshed {
		n.Close()
	}
	for _, c := range caches {
		c.Close()
	}
	for _, ep := range eps {
		ep.Close()
	}
	return res
}
