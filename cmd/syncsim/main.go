// Command syncsim runs a single best-effort synchronization simulation with
// custom parameters and prints the measurements — handy for exploring the
// parameter space beyond the canned experiments of cmd/syncbench.
//
// Example:
//
//	syncsim -sources 100 -objects 10 -cachebw 200 -sourcebw 20 \
//	        -metric deviation -duration 1000 -mb 0.05 -policy coop
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"bestsync/internal/bandwidth"
	"bestsync/internal/core"
	"bestsync/internal/engine"
	"bestsync/internal/metric"
	"bestsync/internal/workload"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "random seed")
		sources  = flag.Int("sources", 10, "number of sources (m)")
		objects  = flag.Int("objects", 10, "objects per source (n)")
		metricF  = flag.String("metric", "deviation", "divergence metric: staleness|lag|deviation")
		duration = flag.Float64("duration", 1000, "simulated seconds")
		warmup   = flag.Float64("warmup", 200, "warm-up seconds excluded from measurement")
		cacheBW  = flag.Float64("cachebw", 50, "mean cache-side bandwidth (msgs/s)")
		sourceBW = flag.Float64("sourcebw", 0, "mean source-side bandwidth (msgs/s, 0 = unlimited)")
		mb       = flag.Float64("mb", 0, "max relative bandwidth change rate m_B")
		rateLo   = flag.Float64("ratelo", 0.01, "min Poisson update rate")
		rateHi   = flag.Float64("ratehi", 1.0, "max Poisson update rate")
		policy   = flag.String("policy", "coop", "scheduler: coop|ideal")
		alpha    = flag.Float64("alpha", core.DefaultAlpha, "threshold increase factor α")
		omega    = flag.Float64("omega", core.DefaultOmega, "threshold decrease factor ω")
	)
	flag.Parse()

	var mk metric.Kind
	switch strings.ToLower(*metricF) {
	case "staleness":
		mk = metric.Staleness
	case "lag":
		mk = metric.Lag
	case "deviation", "value-deviation":
		mk = metric.ValueDeviation
	default:
		fmt.Fprintf(os.Stderr, "syncsim: unknown metric %q\n", *metricF)
		os.Exit(2)
	}

	n := *sources * *objects
	rng := rand.New(rand.NewSource(*seed + 1))
	cfg := engine.Config{
		Seed:             *seed,
		Sources:          *sources,
		ObjectsPerSource: *objects,
		Metric:           mk,
		Duration:         *duration,
		Warmup:           *warmup,
		CacheBW:          bandwidth.Fluctuating(*cacheBW, *mb, 0),
		Rates:            workload.UniformRates(rng, n, *rateLo, *rateHi),
		Params: core.Params{
			Alpha:            *alpha,
			Omega:            *omega,
			InitialThreshold: 1,
		},
	}
	if *sourceBW > 0 {
		cfg.SourceBW = bandwidth.Fluctuating(*sourceBW, *mb, 2)
	}
	switch strings.ToLower(*policy) {
	case "coop", "cooperative":
		cfg.Policy = engine.Cooperative
	case "ideal":
		cfg.Policy = engine.IdealCooperative
	default:
		fmt.Fprintf(os.Stderr, "syncsim: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	res, err := engine.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "syncsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("policy:               %s\n", cfg.Policy)
	fmt.Printf("metric:               %s\n", mk)
	fmt.Printf("objects:              %d sources × %d = %d\n", *sources, *objects, n)
	fmt.Printf("updates:              %d\n", res.Updates)
	fmt.Printf("refreshes sent:       %d\n", res.RefreshesSent)
	fmt.Printf("refreshes delivered:  %d\n", res.RefreshesDelivered)
	fmt.Printf("feedback messages:    %d\n", res.FeedbackSent)
	fmt.Printf("peak queue length:    %d\n", res.PeakQueue)
	fmt.Printf("mean final threshold: %.4g\n", res.MeanThreshold)
	fmt.Printf("avg divergence/obj:   %.6g\n", res.AvgDivergence)
}
