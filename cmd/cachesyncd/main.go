// Command cachesyncd runs a live cache node over TCP. Sources connect with
// cmd/sourceagent (or any client speaking the internal/wire protocol),
// stream refresh messages, and receive positive feedback when the cache has
// spare processing bandwidth.
//
// The cache store is sharded (-shards) with one apply worker per shard, and
// sources are expected to frame refreshes in batches (see sourceagent's
// -batch/-flush flags); -queue bounds each shard's pending-batch queue, the
// back-pressure point between the dispatcher and the workers.
//
// The cache stamps its identity (-id, default the listen address) on the
// feedback it sends, so fan-out sources (sourceagent -caches) can attribute
// feedback to the right sync session and report which cache answered.
//
// Example:
//
//	cachesyncd -addr :7400 -bandwidth 100 -shards 8
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"bestsync/internal/runtime"
	"bestsync/internal/transport"
)

func main() {
	addr := flag.String("addr", ":7400", "listen address")
	id := flag.String("id", "", "cache identifier stamped on feedback (default: the listen address)")
	httpAddr := flag.String("http", "", "optional HTTP status address (e.g. :7401)")
	bw := flag.Float64("bandwidth", 100, "refresh-processing budget (messages/second)")
	shards := flag.Int("shards", 0, "store shards, each with its own lock and apply worker (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "per-shard apply-queue depth in batches")
	statsEvery := flag.Duration("stats", 5*time.Second, "stats print interval (0 = silent)")
	snapshotPath := flag.String("snapshot", "", "optional snapshot file (loaded at boot, saved periodically and on shutdown)")
	snapshotEvery := flag.Duration("snapshot-every", time.Minute, "periodic snapshot interval")
	flag.Parse()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("cachesyncd: %v", err)
	}
	if *id == "" {
		*id = ln.Addr().String()
	}
	ep := transport.Serve(ln, 256)
	cache := runtime.NewCache(runtime.CacheConfig{
		ID:         *id,
		Bandwidth:  *bw,
		Shards:     *shards,
		ShardQueue: *queue,
	}, ep)
	log.Printf("cachesyncd %s: listening on %s, bandwidth %.1f msgs/s, shards=%d",
		cache.ID(), ln.Addr(), *bw, cache.Shards())
	if *snapshotPath != "" {
		if err := cache.LoadSnapshotFile(*snapshotPath); err != nil {
			log.Fatalf("cachesyncd: loading snapshot: %v", err)
		}
		log.Printf("cachesyncd: restored %d objects from %s", cache.Len(), *snapshotPath)
		go func() {
			for range time.Tick(*snapshotEvery) {
				if err := cache.SaveSnapshotFile(*snapshotPath); err != nil {
					log.Printf("cachesyncd: snapshot: %v", err)
				}
			}
		}()
	}
	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/status", cache.StatusHandler(100))
		go func() {
			log.Printf("cachesyncd: status at http://%s/status", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, mux); err != nil {
				log.Printf("cachesyncd: http: %v", err)
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	var ticker *time.Ticker
	if *statsEvery > 0 {
		ticker = time.NewTicker(*statsEvery)
		defer ticker.Stop()
	} else {
		ticker = time.NewTicker(time.Hour)
		ticker.Stop()
	}
	for {
		select {
		case <-stop:
			log.Print("cachesyncd: shutting down")
			if *snapshotPath != "" {
				if err := cache.SaveSnapshotFile(*snapshotPath); err != nil {
					log.Printf("cachesyncd: final snapshot: %v", err)
				}
			}
			cache.Close()
			ep.Close()
			return
		case <-ticker.C:
			st := cache.Stats()
			fmt.Printf("objects=%d sources=%d refreshes=%d feedback=%d stale=%d rate=%.1f/s\n",
				cache.Len(), st.Sources, st.Refreshes, st.Feedbacks, st.Stale, cache.ApplyRate())
		}
	}
}
