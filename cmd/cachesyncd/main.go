// Command cachesyncd runs a live cache node over TCP. Sources connect with
// cmd/sourceagent (or any client speaking the internal/wire protocol),
// stream refresh messages, and receive positive feedback when the cache has
// spare processing bandwidth.
//
// The cache store is sharded (-shards) with one apply worker per shard, and
// sources are expected to frame refreshes in batches (see sourceagent's
// -batch/-flush flags); -queue bounds each shard's pending-batch queue, the
// back-pressure point between the dispatcher and the workers.
//
// The cache stamps its identity (-id, default the listen address) on the
// feedback it sends, so fan-out sources (sourceagent -caches) can attribute
// feedback to the right sync session and report which cache answered.
//
// # Sync policy (-mode)
//
// By default the cache runs the paper's source-cooperative PUSH policy:
// sources decide what to send. With -mode poll|ideal|cgm1|cgm2 the cache
// instead runs the Cho & Garcia-Molina cache-driven baseline (§6.3): it
// discovers the object universe from connected sources, assigns each object
// a poll frequency from the freshness-optimal allocation, and polls — the
// sources (sourceagent -mode with the same value) only answer. The same
// -bandwidth is the message budget either way (a practical-mode poll costs
// two messages per refresh; ideal costs one), so push-vs-poll comparisons
// at equal budget work on live daemons. -resolve-every sets the
// re-estimation epoch; -poll-rate supplies ideal mode's assumed per-object
// update rate (ideal without it falls back to CGM1's estimates).
//
// -mode hybrid runs both halves at once: cooperating sources push their hot
// objects and mark them in each poll reply's Pushed set, and the cache polls
// only the cold remainder with CGM1-estimated frequencies. The Pushed set is
// honored only from sources whose Hello advertised the cooperative
// capability, so a legacy source can never switch this cache's polling off.
// Relay mode accepts push or hybrid upstream.
//
// # Relay mode (cache→cache hierarchy)
//
// With -children the daemon becomes a middle tier: it still serves -addr as
// a cache toward its upstream, but every refresh it applies is re-exported
// as an update toward the listed child caches, with its own send budget
// (-child-bandwidth) divided across them by share weight — edge tiers that
// re-export refreshes. Re-exported refreshes keep the originating source id
// and carry an incremented hop count, so loops are dropped and -max-hops
// bounds re-export depth. A dead child connection is redialed with backoff;
// the child is fully re-synchronized when it returns.
//
// The allocation is live: with -rebalance the child shares are re-derived
// periodically from observed feedback and divergence, and with
// -total-bandwidth the relay's two faces (intake processing and child
// sends) share one budget that shifts between them from observed backlog.
// The -http endpoint adds /children/add and /children/remove in relay
// mode, so children join and leave a running tier:
//
//	POST /children/add?addr=host:port[&weight=2]
//	POST /children/remove?addr=host:port
//
// # Mesh mode (cooperative peer links)
//
// -peers lists LATERAL neighbors instead of (or alongside) downstream
// children: the node pushes the refreshes it applies to each peer exactly
// like a relay re-exports to a child, and — with -child-mode hybrid — also
// answers the peers' polls from its own store, stamping full provenance so
// the peers' own re-exports keep the loop guards intact. Children and peers
// are the same symmetric peer face (internal/runtime Node); the two flags
// only differ in vocabulary, so rings, meshes and random graphs are just
// -peers wiring: each node lists its neighbors, split horizon and the
// path-vector Via check stop updates from circulating, and -max-hops bounds
// the lateral depth. /peers/add and /peers/remove manage links at runtime
// the same way /children/* does. Peer mode advertises the peer capability
// (wire.CapPeer) on outbound Hellos so neighbors attach known-version
// hints to their polls and skip redundant answers.
//
// Examples:
//
//	cachesyncd -addr :7400 -bandwidth 100 -shards 8
//	cachesyncd -addr :7400 -children edge-a:7500,edge-b:7500=2 -child-bandwidth 60
//	cachesyncd -addr :7400 -children edge-a:7500 -total-bandwidth 120 -rebalance 2s -http :7401
//	cachesyncd -addr :7400 -peers node-b:7400,node-c:7400 -child-mode hybrid
//	cachesyncd -addr :7400 -mode cgm1 -bandwidth 100 -resolve-every 20s
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"bestsync/internal/adminhttp"
	"bestsync/internal/destspec"
	"bestsync/internal/metric"
	"bestsync/internal/runtime"
	"bestsync/internal/transport"
	"bestsync/internal/wire"
)

func main() {
	addr := flag.String("addr", ":7400", "listen address")
	id := flag.String("id", "", "cache identifier stamped on feedback (default: the listen address)")
	httpAddr := flag.String("http", "", "optional HTTP status address (e.g. :7401)")
	bw := flag.Float64("bandwidth", 100, "refresh-processing budget (messages/second)")
	mode := flag.String("mode", "push", "sync policy: push (source-cooperative), hybrid (push hot head, poll cold tail) or poll|ideal|cgm1|cgm2 (cache-driven CGM baseline)")
	childMode := flag.String("child-mode", "push", "relay mode: sync policy on the downstream (child) face: push or hybrid")
	resolveEvery := flag.Duration("resolve-every", 30*time.Second, "poll modes: re-estimation/re-allocation epoch")
	pollRate := flag.Float64("poll-rate", 0, "ideal mode: assumed per-object update rate (updates/s); 0 = fall back to CGM1 estimates")
	shards := flag.Int("shards", 0, "store shards, each with its own lock and apply worker (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "per-shard apply-queue depth in batches")
	children := flag.String("children", "", "comma-separated downstream cache addresses host:port[=weight] (relay mode: re-export applied refreshes)")
	peers := flag.String("peers", "", "comma-separated lateral peer addresses host:port[=weight] (mesh mode: same peer face as -children, ring/mesh vocabulary)")
	childBW := flag.Float64("child-bandwidth", 50, "relay mode: send budget toward children (messages/second), divided by share weight")
	totalBW := flag.Float64("total-bandwidth", 0, "relay mode: shared budget across both faces (intake + child sends); overrides -bandwidth/-child-bandwidth defaults to half each and lets -rebalance shift the split")
	rebalance := flag.Duration("rebalance", 0, "relay mode: periodic share re-allocation interval (child shares from observed feedback/divergence; with -total-bandwidth also the up/down face split; 0 = static)")
	maxHops := flag.Int("max-hops", 8, "relay mode: drop re-exports past this many relay tiers")
	group := flag.Bool("group", false, "relay mode: session-group fan-out toward default-weight children (one scheduling pass, one encode per batch)")
	splice := flag.Bool("splice", true, "relay mode with -group: zero-copy re-export — splice-patch retained inbound binary frames onto the child face instead of decoding and re-encoding (falls back automatically where ineligible)")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the -http mux")
	statsEvery := flag.Duration("stats", 5*time.Second, "stats print interval (0 = silent)")
	snapshotPath := flag.String("snapshot", "", "optional snapshot file (loaded at boot, saved periodically and on shutdown)")
	snapshotEvery := flag.Duration("snapshot-every", time.Minute, "periodic snapshot interval")
	codecPref := flag.String("codec", "auto", "wire codec for outbound (child) connections: auto (binary, falling back to gob against old daemons) | binary | gob; inbound streams always auto-detect")
	flag.Parse()

	policy, err := runtime.ParsePolicy(*mode)
	if err != nil {
		log.Fatalf("cachesyncd: -mode: %v", err)
	}
	childPolicy, err := runtime.ParsePolicy(*childMode)
	if err != nil {
		log.Fatalf("cachesyncd: -child-mode: %v", err)
	}
	dialCodec, err := transport.ParseCodec(*codecPref)
	if err != nil {
		log.Fatalf("cachesyncd: -codec: %v", err)
	}
	transport.SetDialCodec(dialCodec)
	var caps uint64
	if childPolicy == runtime.PolicyHybrid {
		// The relay's child face pushes its hot set; advertising the
		// cooperative capability lets hybrid children trust the Pushed sets
		// in its poll replies.
		caps |= wire.CapCooperative
	}
	if *children != "" || *peers != "" {
		// A node with a peer face understands peer-capable frames (poll
		// provenance, known-version hints); advertising CapPeer lets the
		// node on the other end attach Known hints to the polls it sends
		// back over this connection.
		caps |= wire.CapPeer
	}
	transport.SetDialCapabilities(caps)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("cachesyncd: %v", err)
	}
	if *id == "" {
		*id = ln.Addr().String()
	}
	ep := transport.Serve(ln, 256)

	// In relay mode the cache is owned by a Relay that re-exports applied
	// refreshes toward the children; otherwise it is a plain leaf cache.
	var (
		cache *runtime.Cache
		relay *runtime.Relay
	)
	// Child connections are batched with the transport defaults and
	// redialed with backoff so a restarted child rejoins the tier; a
	// child that is down right now does not block the boot. The admin
	// endpoint wraps destinations added at runtime identically.
	wrap := func(conn transport.SourceConn) transport.SourceConn {
		// Group delivery coalesces at the scheduler and sends pre-encoded
		// frames; a Batcher in front would hide the connection's FrameSender
		// fast path, so -group uses child connections bare.
		if *group {
			return conn
		}
		return transport.NewBatcher(conn, transport.BatcherConfig{})
	}
	if *children != "" || *peers != "" {
		if policy.CacheDriven() {
			log.Fatalf("cachesyncd: relay/mesh mode requires -mode push or hybrid (got %v)", policy)
		}
		var addrs []string
		var weights []float64
		if *children != "" {
			a, w, err := destspec.Parse(*children)
			if err != nil {
				log.Fatalf("cachesyncd: -children: %v", err)
			}
			addrs, weights = append(addrs, a...), append(weights, w...)
		}
		if *peers != "" {
			// Peers land on the same symmetric face as children; the flags
			// differ only in topology vocabulary.
			a, w, err := destspec.Parse(*peers)
			if err != nil {
				log.Fatalf("cachesyncd: -peers: %v", err)
			}
			addrs, weights = append(addrs, a...), append(weights, w...)
		}
		dests, deferred := runtime.DialDestinations(addrs, weights, *id, wrap)
		for _, addr := range deferred {
			log.Printf("cachesyncd: peer %s unreachable, will keep redialing", addr)
		}
		// With a shared face budget, face budgets not explicitly set on
		// the command line default to half the total each (the relay's
		// own defaulting) instead of the flags' standalone defaults.
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		cacheBW, childBand := *bw, *childBW
		if *totalBW > 0 {
			if !explicit["bandwidth"] {
				cacheBW = 0
			}
			if !explicit["child-bandwidth"] {
				childBand = 0
			}
		}
		upCfg := runtime.CacheConfig{Bandwidth: cacheBW, Shards: *shards, ShardQueue: *queue, Policy: policy}
		if policy.Polls() {
			upCfg.Poll = runtime.PollConfig{ReSolveEvery: *resolveEvery}
		}
		relay, err = runtime.NewRelay(runtime.RelayConfig{
			ID:             *id,
			Cache:          upCfg,
			ChildBandwidth: childBand,
			TotalBandwidth: *totalBW,
			Rebalance:      *rebalance,
			Metric:         metric.ValueDeviation,
			MaxHops:        *maxHops,
			ChildPolicy:    childPolicy,
			Group:          runtime.GroupConfig{Enabled: *group},
			SpliceForward:  *group && *splice,
		}, ep, dests)
		if err != nil {
			log.Fatalf("cachesyncd: %v", err)
		}
		cache = relay.Cache()
		rst := relay.Stats()
		face := "children"
		if *peers != "" {
			face = "peer links"
		}
		log.Printf("cachesyncd %s: node on %s, bandwidth %.1f msgs/s intake / %.1f msgs/s out to %d %s, shards=%d",
			relay.ID(), ln.Addr(), rst.UpBandwidth, rst.DownBandwidth, len(dests), face, cache.Shards())
	} else {
		pollCfg := runtime.PollConfig{ReSolveEvery: *resolveEvery}
		if *pollRate > 0 {
			rate := *pollRate
			pollCfg.TrueRate = func(string) float64 { return rate }
		}
		cache = runtime.NewCache(runtime.CacheConfig{
			ID:         *id,
			Bandwidth:  *bw,
			Shards:     *shards,
			ShardQueue: *queue,
			Policy:     policy,
			Poll:       pollCfg,
		}, ep)
		log.Printf("cachesyncd %s: listening on %s, policy %v, bandwidth %.1f msgs/s, shards=%d",
			cache.ID(), ln.Addr(), policy, *bw, cache.Shards())
	}
	if *snapshotPath != "" {
		if err := cache.LoadSnapshotFile(*snapshotPath); err != nil {
			log.Fatalf("cachesyncd: loading snapshot: %v", err)
		}
		log.Printf("cachesyncd: restored %d objects from %s", cache.Len(), *snapshotPath)
		if relay != nil && cache.Len() > 0 {
			// Snapshot loading bypasses the apply hook; seed the child
			// sessions so restored objects reach the tier below too.
			relay.ReexportStore()
			log.Printf("cachesyncd: re-exporting %d restored objects to children", cache.Len())
		}
		go func() {
			for range time.Tick(*snapshotEvery) {
				if err := cache.SaveSnapshotFile(*snapshotPath); err != nil {
					log.Printf("cachesyncd: snapshot: %v", err)
				}
			}
		}()
	}
	if *pprofFlag && *httpAddr == "" {
		log.Printf("cachesyncd: -pprof has no effect without -http")
	}
	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/status", cache.StatusHandler(100))
		if relay != nil {
			mux.HandleFunc("/children/add", adminhttp.AddHandler(relay.AddChild, *id, wrap))
			mux.HandleFunc("/children/remove", adminhttp.RemoveHandler(relay.RemoveChild))
			// The mesh-vocabulary aliases manage the same symmetric face.
			node := relay.Node()
			mux.HandleFunc("/peers/add", adminhttp.AddHandler(node.AddPeer, *id, wrap))
			mux.HandleFunc("/peers/remove", adminhttp.RemoveHandler(node.RemovePeer))
		}
		if *pprofFlag {
			adminhttp.RegisterPprof(mux)
		}
		go func() {
			log.Printf("cachesyncd: status at http://%s/status", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, mux); err != nil {
				log.Printf("cachesyncd: http: %v", err)
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	var ticker *time.Ticker
	if *statsEvery > 0 {
		ticker = time.NewTicker(*statsEvery)
		defer ticker.Stop()
	} else {
		ticker = time.NewTicker(time.Hour)
		ticker.Stop()
	}
	for {
		select {
		case <-stop:
			log.Print("cachesyncd: shutting down")
			if *snapshotPath != "" {
				if err := cache.SaveSnapshotFile(*snapshotPath); err != nil {
					log.Printf("cachesyncd: final snapshot: %v", err)
				}
			}
			if relay != nil {
				relay.Close()
			} else {
				cache.Close()
			}
			ep.Close()
			return
		case <-ticker.C:
			st := cache.Stats()
			switch {
			case policy == runtime.PolicyHybrid:
				fmt.Printf("objects=%d sources=%d refreshes=%d feedback=%d polls=%d replies=%d resolves=%d stale=%d rate=%.1f/s\n",
					cache.Len(), st.Sources, st.Refreshes, st.Feedbacks, st.Polls, st.PollReplies, st.Resolves, st.Stale, cache.ApplyRate())
			case policy.CacheDriven():
				fmt.Printf("objects=%d sources=%d refreshes=%d polls=%d replies=%d resolves=%d stale=%d rate=%.1f/s\n",
					cache.Len(), st.Sources, st.Refreshes, st.Polls, st.PollReplies, st.Resolves, st.Stale, cache.ApplyRate())
				continue
			default:
				fmt.Printf("objects=%d sources=%d refreshes=%d feedback=%d stale=%d rate=%.1f/s\n",
					cache.Len(), st.Sources, st.Refreshes, st.Feedbacks, st.Stale, cache.ApplyRate())
			}
			if relay != nil {
				rst := relay.Stats()
				fmt.Printf("  node forwarded=%d looped=%d hop_limited=%d suppressed=%d peer_served=%d out_refreshes=%d up=%.3g/s down=%.3g/s rebalances=%d\n",
					rst.Forwarded, rst.Looped, rst.HopLimited, rst.ThresholdSuppressed,
					rst.Upstream.PeerServed, rst.Downstream.Refreshes,
					rst.UpBandwidth, rst.DownBandwidth, rst.FaceRebalances)
				if h := rst.Downstream.Hybrid; h != nil {
					fmt.Printf("  hybrid push_objects=%d poll_objects=%d promotions=%d demotions=%d polls_answered=%d polled_items=%d\n",
						h.PushObjects, h.PollObjects, h.Promotions, h.Demotions, rst.Downstream.PollsAnswered, h.PolledItems)
				}
				if g := rst.Downstream.Group; g != nil {
					fmt.Printf("  group members=%d batches=%d delivered=%d fallbacks=%d detaches=%d rejoins=%d overruns=%d share=%.3g/s\n",
						g.Members, g.Batches, g.Delivered, g.Fallbacks, g.Detaches, g.Rejoins, g.QueueOverruns, g.MemberShare)
				}
				if rst.SplicedBatches > 0 || rst.SpliceFallbacks > 0 {
					fmt.Printf("  splice batches=%d refreshes=%d fallbacks=%d\n",
						rst.SplicedBatches, rst.SplicedRefreshes, rst.SpliceFallbacks)
				}
				for _, sess := range rst.Downstream.Sessions {
					ended := ""
					if sess.Ended {
						ended = " ENDED"
					}
					fmt.Printf("  child %-24s share=%.3g/s weight=%.3g refreshes=%d feedback=%d reconnects=%d threshold=%.4g%s\n",
						sess.CacheID, sess.Share, sess.Weight, sess.Refreshes, sess.Feedbacks, sess.Reconnects, sess.Threshold, ended)
				}
			}
		}
	}
}
