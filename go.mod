module bestsync

go 1.24
