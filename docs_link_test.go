package bestsync_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links/images: [text](target). Targets with
// spaces are never used in this repo, so the regexp stops at whitespace or
// the closing parenthesis.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsRelativeLinks fails on broken relative links in any *.md file of
// the repository — the docs tree cross-links heavily (docs/README.md index,
// README.md, ROADMAP.md), and a rename must not silently orphan a
// reference. External (http/https/mailto) and pure-anchor links are out of
// scope. CI runs this as its docs link-check step.
func TestDocsRelativeLinks(t *testing.T) {
	checked := 0
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		// SNIPPETS.md quotes exemplar code/docs from other repositories
		// verbatim; its links refer to files of those repos, not this one.
		if path == "SNIPPETS.md" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") ||
				strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			// Drop an in-file anchor; existence is checked per file.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, statErr := os.Stat(resolved); statErr != nil {
				t.Errorf("%s: broken relative link %q (resolved %s)", path, m[1], resolved)
			}
			checked++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no relative links found at all — the scanner is broken")
	}
	t.Logf("checked %d relative links", checked)
}
