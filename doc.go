// Package bestsync is a from-scratch Go implementation of best-effort cache
// synchronization with source cooperation (Olston & Widom, SIGMOD 2002).
//
// The repository has two halves sharing the same protocol core
// (internal/core, internal/metric, internal/priority):
//
//   - a discrete-event simulation half (internal/engine, internal/cgm,
//     internal/experiments) that reproduces the paper's tables and figures
//     on a virtual clock, and
//   - a live half (internal/runtime, internal/transport, internal/wire)
//     that runs the same protocol over wall-clock time and TCP, with a
//     sharded concurrent cache store, batched refresh framing, fan-out
//     sources, relay tiers (cache→cache hierarchy: a cache that
//     re-exports applied refreshes to downstream children), and a
//     pluggable sync-policy layer (runtime.Policy: the paper's
//     source-cooperative push, or the cache-driven CGM polling baselines
//     of §6.3 run live) for production-scale topologies.
//
// Runnable entry points:
//
//   - cmd/syncbench — regenerate the paper's tables and figures, or (with
//     -throughput) benchmark the live runtime's refresh-apply path
//   - cmd/syncsim   — run one simulation with custom parameters
//   - cmd/cachesyncd, cmd/sourceagent — live TCP cache and source daemons
//   - examples/*    — library usage walkthroughs
//
// The benchmarks in bench_test.go map one-to-one onto the experiment
// registry of internal/experiments, plus BenchmarkShardedApply and
// BenchmarkBatchedTCP for the live hot path.
//
// Documentation lives under docs/: docs/README.md is the index,
// docs/architecture.md maps the packages and the data flow,
// docs/operations.md covers every daemon flag and benchmark schema, and
// docs/algorithm-specifications.md is the formal algorithm specification
// (divergence metrics, priority functions, threshold feedback loop, CGM
// allocation, fan-out shares, relay divergence accounting). README.md has
// quickstart transcripts.
package bestsync
