// Package bestsync is a from-scratch Go implementation of best-effort cache
// synchronization with source cooperation (Olston & Widom, SIGMOD 2002).
//
// The repository has two halves sharing the same protocol core
// (internal/core, internal/metric, internal/priority):
//
//   - a discrete-event simulation half (internal/engine, internal/cgm,
//     internal/experiments) that reproduces the paper's tables and figures
//     on a virtual clock, and
//   - a live half (internal/runtime, internal/transport, internal/wire)
//     that runs the same protocol over wall-clock time and TCP, with a
//     sharded concurrent cache store and batched refresh framing for
//     production-scale throughput.
//
// Runnable entry points:
//
//   - cmd/syncbench — regenerate the paper's tables and figures, or (with
//     -throughput) benchmark the live runtime's refresh-apply path
//   - cmd/syncsim   — run one simulation with custom parameters
//   - cmd/cachesyncd, cmd/sourceagent — live TCP cache and source daemons
//   - examples/*    — library usage walkthroughs
//
// The benchmarks in bench_test.go map one-to-one onto the experiment
// registry of internal/experiments, plus BenchmarkShardedApply and
// BenchmarkBatchedTCP for the live hot path. The formal algorithm
// specification (divergence
// metrics, priority functions, threshold feedback loop, CGM allocation) is
// in docs/algorithm-specifications.md; README.md has quickstart
// transcripts.
package bestsync
