// Package bestsync is a from-scratch Go implementation of best-effort cache
// synchronization with source cooperation (Olston & Widom, SIGMOD 2002).
//
// The implementation lives under internal/ (see DESIGN.md for the module
// map); runnable entry points are:
//
//   - cmd/syncbench — regenerate the paper's tables and figures
//   - cmd/syncsim   — run one simulation with custom parameters
//   - cmd/cachesyncd, cmd/sourceagent — live TCP cache and source daemons
//   - examples/*    — library usage walkthroughs
//
// The benchmarks in bench_test.go map one-to-one onto the experiment index
// in DESIGN.md §3.
package bestsync
