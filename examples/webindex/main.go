// Webindex: the paper's Web-indexing scenario — a search index (the cache)
// tracking documents at many content providers (the sources) under the
// staleness metric, with popularity-skewed weights. Compares cooperative
// synchronization against the cache-driven CGM polling baselines the paper
// evaluates in Section 6.3.
//
// Run with:
//
//	go run ./examples/webindex
package main

import (
	"fmt"
	"math/rand"

	"bestsync/internal/bandwidth"
	"bestsync/internal/cgm"
	"bestsync/internal/engine"
	"bestsync/internal/metric"
	"bestsync/internal/priority"
	"bestsync/internal/weight"
	"bestsync/internal/workload"
)

func main() {
	const (
		providers = 50 // content providers
		pages     = 20 // pages per provider
		duration  = 500
		warmup    = 100
	)
	n := providers * pages

	rng := rand.New(rand.NewSource(3))
	// Page change rates: most pages change rarely, some churn constantly.
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = 0.01 * pow(1.5, float64(rng.Intn(12)))
	}
	// Popularity weights follow a Zipf law (PageRank-ish skew).
	zipf := workload.ZipfWeights(n, 1.0)
	weights := make([]weight.Fn, n)
	perm := rng.Perm(n)
	for i := range weights {
		weights[i] = weight.Const(zipf[perm[i]])
	}

	crawlBudget := float64(n) / 4 // messages/second the index can absorb
	fmt.Printf("web index: %d providers × %d pages, crawl budget %.0f msgs/s\n\n",
		providers, pages, crawlBudget)

	// Cooperative: providers push changed pages, prioritized by 1/λ × pop.
	cfg := engine.Config{
		Seed:             1,
		Sources:          providers,
		ObjectsPerSource: pages,
		Metric:           metric.Staleness,
		PriorityFn:       priority.PoissonStaleness,
		Duration:         duration,
		Warmup:           warmup,
		CacheBW:          bandwidth.Const(crawlBudget),
		Rates:            rates,
		Weights:          weights,
	}
	coop := engine.MustRun(cfg)

	// Cache-driven baselines: the index polls providers blindly.
	base := cgm.Config{
		Seed:     1,
		Objects:  n,
		Metric:   metric.Staleness,
		Duration: duration,
		Warmup:   warmup,
		CacheBW:  bandwidth.Const(crawlBudget),
		Rates:    rates,
	}
	results := []struct {
		name string
		div  float64
	}{
		{"cooperative push (this paper)", coop.AvgDivergence},
	}
	for _, mode := range []cgm.Mode{cgm.IdealCacheBased, cgm.CGM1, cgm.CGM2} {
		c := base
		c.Mode = mode
		results = append(results, struct {
			name string
			div  float64
		}{mode.String() + " polling", cgm.MustRun(c).AvgDivergence})
	}

	fmt.Printf("%-34s %s\n", "strategy", "avg weighted staleness")
	for _, r := range results {
		fmt.Printf("%-34s %.4f\n", r.name, r.div)
	}
	fmt.Println()
	fmt.Println("Cooperative providers notify the index only when pages actually")
	fmt.Println("change and rank rarely-changing popular pages first, so the same")
	fmt.Println("crawl budget buys a much fresher index than blind polling.")
}

func pow(b, e float64) float64 {
	r := 1.0
	for i := 0; i < int(e); i++ {
		r *= b
	}
	return r
}
