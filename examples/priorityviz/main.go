// Priorityviz regenerates Figure 3 of the paper: two objects with the same
// current divergence but different histories, showing why the refresh
// priority is the *area above* the divergence curve rather than the
// divergence itself. Object O1 stayed flat and jumped recently; object O2
// jumped right after its last refresh. O1 earns the higher priority: if each
// object repeats its behaviour after a refresh, refreshing O1 buys a long
// stretch of synchrony, refreshing O2 almost none.
//
// Run with:
//
//	go run ./examples/priorityviz
package main

import (
	"fmt"
	"os"

	"bestsync/internal/metric"
	"bestsync/internal/stats"
)

func main() {
	const (
		tLast = 0.0
		tNow  = 10.0
	)
	// Scripted divergence histories (value-deviation metric).
	type step struct{ t, d float64 }
	o1Steps := []step{{8.5, 1}, {9, 3}, {9.5, 5}} // late riser
	o2Steps := []step{{0.5, 3}, {1, 4.5}, {2, 5}} // early riser
	var o1, o2 metric.Tracker
	o1.Reset(tLast, 0)
	o2.Reset(tLast, 0)

	curve := func(trk *metric.Tracker, steps []step, name string) stats.Series {
		s := stats.Series{Name: name}
		s.Add(tLast, 0)
		for _, st := range steps {
			s.Add(st.t, trk.Current()) // step function: value before the jump
			trk.Update(st.t, st.d)
			s.Add(st.t, st.d)
		}
		s.Add(tNow, trk.Current())
		return s
	}
	s1 := curve(&o1, o1Steps, "object O1 (late riser)")
	s2 := curve(&o2, o2Steps, "object O2 (early riser)")

	stats.PlotASCII(os.Stdout, "Figure 3: divergence histories (x: time, y: divergence)",
		[]stats.Series{s1, s2}, 72, 16)
	fmt.Println()

	p1 := o1.Priority(tNow)
	p2 := o2.Priority(tNow)
	fmt.Printf("current divergence:  O1 = %.1f   O2 = %.1f  (equal)\n",
		o1.Current(), o2.Current())
	fmt.Printf("refresh priority:    O1 = %.2f  O2 = %.2f\n", p1, p2)
	fmt.Println()
	if p1 > p2 {
		fmt.Println("O1 wins: its divergence curve hugged zero until recently, so the")
		fmt.Println("area ABOVE the curve — the expected future benefit of a refresh —")
		fmt.Println("is large. O2 diverged immediately after its last refresh; if that")
		fmt.Println("repeats, a refresh buys almost nothing.")
	}
	// The simple weighted-divergence strawman cannot tell them apart.
	fmt.Printf("\nsimple D·W priority would rank them equal: %.1f vs %.1f\n",
		o1.Current(), o2.Current())
}
