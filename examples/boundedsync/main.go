// Boundedsync: Section 9's guaranteed divergence bounds. When applications
// need certainty ("the cached reading is at most X away from reality"), the
// scheduler should minimize the guaranteed *bound* R·((t − t_last) + L)
// rather than the actual divergence. This example compares the bound-
// minimizing priority against the ordinary divergence priority and against
// the closed-form optimal periods.
//
// Run with:
//
//	go run ./examples/boundedsync
package main

import (
	"fmt"
	"math/rand"

	"bestsync/internal/bandwidth"
	"bestsync/internal/bound"
	"bestsync/internal/engine"
	"bestsync/internal/metric"
	"bestsync/internal/priority"
)

func main() {
	const (
		m, n     = 10, 10
		duration = 800.0
		budget   = 25.0 // refreshes/second
	)
	N := m * n

	// Each object has a known maximum divergence rate R_i — e.g. a sensor
	// whose reading physically cannot change faster than R units/second.
	rng := rand.New(rand.NewSource(5))
	maxRates := make([]float64, N)
	rates := make([]float64, N)
	for i := range maxRates {
		maxRates[i] = 0.1 + rng.Float64()*3
		rates[i] = maxRates[i] / 2 // actual change rate under the cap
	}

	run := func(fn priority.Fn) engine.Result {
		cfg := engine.Config{
			Seed:             1,
			Sources:          m,
			ObjectsPerSource: n,
			Metric:           metric.ValueDeviation,
			PriorityFn:       fn,
			Duration:         duration,
			CacheBW:          bandwidth.Const(budget),
			Rates:            rates,
			MaxRates:         maxRates,
			RefreshLatency:   0.5, // L: worst-case delivery delay
			Policy:           engine.IdealCooperative,
		}
		return engine.MustRun(cfg)
	}

	boundRes := run(priority.BoundArea)
	divRes := run(priority.AreaGeneral)

	ones := make([]float64, N)
	for i := range ones {
		ones[i] = 1
	}
	periods, err := bound.OptimalPeriods(maxRates, ones, budget)
	if err != nil {
		panic(err)
	}
	optimum := bound.AverageBound(maxRates, ones, periods, 0.5)

	fmt.Println("guaranteed-bound scheduling (Section 9)")
	fmt.Println()
	fmt.Printf("%-36s %s\n", "scheduler", "avg guaranteed bound")
	fmt.Printf("%-36s %.4f\n", "bound priority R(t-t_last)^2/2", boundRes.AvgBound)
	fmt.Printf("%-36s %.4f\n", "divergence priority (Section 3.3)", divRes.AvgBound)
	fmt.Printf("%-36s %.4f\n", "closed-form optimal periods", optimum)
	fmt.Println()
	fmt.Println("The bound priority refreshes objects in proportion to sqrt(R),")
	fmt.Println("matching the closed-form optimum; scheduling by realized divergence")
	fmt.Println("reacts to what the random walk happened to do, not to the worst")
	fmt.Println("case, and guarantees a looser bound for the same bandwidth.")

	// Show the per-object guarantee an application would quote.
	worst := 0.0
	for i := 0; i < 3; i++ {
		b := bound.Bound(maxRates[i], periods[i], 0.5)
		fmt.Printf("object %d: R=%.2f, refresh every %.2fs → bound ≤ %.2f\n",
			i, maxRates[i], periods[i], b)
		if b > worst {
			worst = b
		}
	}
}
