// Quickstart: a complete in-process deployment of best-effort cache
// synchronization — one cache, two sources, constrained bandwidth.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"time"

	"bestsync/internal/metric"
	"bestsync/internal/runtime"
	"bestsync/internal/transport"
)

func main() {
	// The in-process "network": refresh messages queue here when the cache
	// is busy, just like the paper's bandwidth-limited link.
	net := transport.NewLocal(64)

	// A cache that can absorb 50 refresh messages per second. Spare budget
	// becomes positive feedback telling sources to refresh more eagerly.
	cache := runtime.NewCache(runtime.CacheConfig{Bandwidth: 50}, net)
	defer cache.Close()

	// Two sources with different send budgets.
	mkSource := func(id string, bw float64) *runtime.Source {
		conn, err := net.Dial(id)
		if err != nil {
			panic(err)
		}
		return runtime.NewSource(runtime.SourceConfig{
			ID:        id,
			Metric:    metric.ValueDeviation, // |source − cached|
			Bandwidth: bw,
		}, conn)
	}
	fast := mkSource("fast-sensor", 40)
	slow := mkSource("slow-sensor", 5)
	defer fast.Close()
	defer slow.Close()

	// Generate random-walk measurements for a second or so.
	rng := rand.New(rand.NewSource(42))
	temp, pressure := 20.0, 1013.0
	for i := 0; i < 100; i++ {
		temp += rng.Float64() - 0.5
		pressure += 2 * (rng.Float64() - 0.5)
		fast.Update("temperature", temp)
		slow.Update("pressure", pressure)
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(300 * time.Millisecond) // let the last refreshes drain

	// Read the cached copies and compare with the source truth.
	report := func(id string, truth float64) {
		e, ok := cache.Get(id)
		if !ok {
			fmt.Printf("%-12s  never synchronized\n", id)
			return
		}
		fmt.Printf("%-12s  source=%8.3f  cached=%8.3f  divergence=%.3f\n",
			id, truth, e.Value, abs(truth-e.Value))
	}
	fmt.Println("object        source value   cached value   divergence")
	report("temperature", temp)
	report("pressure", pressure)

	cs := cache.Stats()
	fmt.Printf("\ncache: %d refreshes applied, %d feedback messages sent\n",
		cs.Refreshes, cs.Feedbacks)
	for _, s := range []*runtime.Source{fast, slow} {
		st := s.Stats()
		fmt.Printf("%s: %d updates → %d refreshes (threshold %.2g)\n",
			map[*runtime.Source]string{fast: "fast-sensor", slow: "slow-sensor"}[s],
			st.Updates, st.Refreshes, st.Threshold)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
