// Sensornet: the paper's motivating scenario (Section 1) — hundreds of
// battery-powered sensors behind a low-bandwidth wireless uplink, too little
// capacity to propagate every reading. This example runs the simulation
// engine twice over the same sensor workload: once with the cooperative
// threshold protocol and once with the idealized global scheduler, and shows
// how close best-effort synchronization gets to the ideal at each uplink
// capacity.
//
// Run with:
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"math/rand"

	"bestsync/internal/bandwidth"
	"bestsync/internal/engine"
	"bestsync/internal/metric"
	"bestsync/internal/weight"
	"bestsync/internal/workload"
)

func main() {
	const (
		sensors   = 200 // sources: cheap radio nodes
		readings  = 5   // objects per sensor: temperature, wind, ...
		duration  = 600 // seconds simulated
		warmup    = 120
		totalObjs = sensors * readings
	)

	// Sensor readings change at heterogeneous rates; a few "alarm" channels
	// are weighted 10× because monitoring cares most about them.
	rng := rand.New(rand.NewSource(7))
	rates := workload.UniformRates(rng, totalObjs, 0.02, 0.5)
	weights := make([]weight.Fn, totalObjs)
	for i := range weights {
		if i%readings == 0 {
			weights[i] = weight.Const(10) // the alarm channel
		} else {
			weights[i] = weight.Const(1)
		}
	}

	fmt.Println("sensor network: 200 sensors × 5 readings, value-deviation metric")
	fmt.Println()
	fmt.Printf("%-22s %-14s %-14s %-8s\n",
		"uplink (msgs/s)", "cooperative", "ideal", "ratio")
	for _, uplink := range []float64{10, 25, 50, 100, 200} {
		cfg := engine.Config{
			Seed:             1,
			Sources:          sensors,
			ObjectsPerSource: readings,
			Metric:           metric.ValueDeviation,
			Duration:         duration,
			Warmup:           warmup,
			CacheBW:          bandwidth.Fluctuating(uplink, 0.05, 0),
			SourceBW:         bandwidth.Const(2), // each node's radio budget
			Rates:            rates,
			Weights:          weights,
		}
		cfg.Policy = engine.Cooperative
		coop := engine.MustRun(cfg)
		cfg.Policy = engine.IdealCooperative
		ideal := engine.MustRun(cfg)
		fmt.Printf("%-22.0f %-14.4f %-14.4f %-8.2f\n",
			uplink, coop.AvgDivergence, ideal.AvgDivergence,
			coop.AvgDivergence/ideal.AvgDivergence)
	}
	fmt.Println()
	fmt.Println("Reading the table: with scarce uplink bandwidth the cooperative")
	fmt.Println("protocol concentrates refreshes on the weighted alarm channels and")
	fmt.Println("the slowest-diverging readings, tracking the idealized scheduler")
	fmt.Println("without any global coordination.")
}
